"""RRT-Connect: the bidirectional variant (Kuffner & LaValle, ref [45]).

Section VI places RRT-Connect at the *exploration-tree level* of the
parallelisation design space — two trees grow from start and goal and the
planner tries to connect them after every extension.  MOPED's algorithmic
optimisations (two-stage collision checking, SI-MBR-Tree search, O(1)
insertion) apply per tree unchanged, which is the paper's claim that its
techniques transfer across the whole RRT family.  This implementation
shares the full PR 3-8 machinery with the RRT\\* loop — batch collision
kernels, collision/neighborhood/edge caches, whole-edge
:meth:`~repro.core.collision.CollisionChecker.motion_results_batch`
validation, the PR 5 deadline / op-budget anytime plumbing, and
cooperative cancellation for portfolio racing — so ablations compose and
``PlannerConfig.mode = "connect"`` is a drop-in backend everywhere a
planner runs.

RRT-Connect is a feasibility planner: it returns the first path that joins
the trees (no cost refinement), typically after far fewer samples than
RRT\\* needs for a first solution.  ``goal_bias``, ``rewire``,
``stop_on_goal`` and ``informed`` do not apply.

Two mechanics matter for throughput:

* **Greedy whole-segment connect.**  After each accepted extension the
  other tree extends greedily toward the new node.  The full segment is
  first validated as ONE whole edge (single ladder + FK batch + stacked
  kernel pass, PR 8); only when that long edge is blocked does the loop
  fall back to advancing chunk by chunk (``_CHUNK_STEPS`` steering steps
  per chunk, each chunk again a whole edge), keeping the free prefix.
  Compared to the classic one-steering-step-at-a-time loop this collapses
  up to hundreds of collision calls into a handful of batched ones and
  inserts far fewer tree nodes.

* **Wavefront speculation** (``wave_width = W > 1``).  Each wave draws
  ``W`` samples at once, speculates every sample's nearest neighbor from a
  snapshot distance matrix of its (alternating) active tree, steers the
  speculative extension edges and validates them in one
  ``motion_results_batch`` call, then speculates the whole-segment connect
  edge of each predicted accept against the *other* tree's snapshot in a
  second batch.  Commits then run in sample order with exact scalar
  semantics: when the committed edge equals the speculated one its stored
  verdict and counter events are replayed; any mismatch (an intra-wave
  accept moved the nearest) falls back to the scalar check.  Paths, costs
  and operation counters are therefore **bit-identical across wave
  widths** — W only changes what is precomputed, never what is decided.

Deadline / op-budget expiry (and race cancellation via
:mod:`repro.core.cancel`) is polled at every round *and* inside the greedy
connect chunk loop, so even a long connect is promptly interruptible; a
degraded run returns the collision-free prefix of the start tree that ends
closest to the goal, exactly like the RRT\\* anytime path.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.core.metrics import PlanResult, RoundRecord, path_length
from repro.core.neighbors import make_strategy
from repro.core.rng import LFSRSampler, NumpySampler
from repro.core.robots import RobotModel
from repro.core.tree import ExpTree
from repro.core.world import PlanningTask
from repro.core.rrtstar import _CC_KINDS, _MAINT_KINDS, _NS_KINDS, _RunState
from repro.obs import PhaseRecorder, bump

#: Steering steps per greedy-connect chunk.  A blocked whole-segment
#: connect advances in chunks of this many steps, each validated as one
#: whole edge; larger values mean fewer batched calls but a coarser stop
#: point before the obstacle.
_CHUNK_STEPS = 8


class RRTConnectPlanner:
    """Bidirectional RRT with greedy whole-segment connect extensions."""

    def __init__(self, robot: RobotModel, task: PlanningTask, config: PlannerConfig):
        if task.start.shape != (robot.dof,) or task.goal.shape != (robot.dof,):
            raise ValueError(
                f"task configurations must be {robot.dof}-dimensional for {robot.name}"
            )
        self.robot = robot
        self.task = task
        self.config = config
        self.step = config.resolved_step(robot.step_size)
        self.chunk = _CHUNK_STEPS * self.step
        resolution = config.resolved_motion_resolution(robot.step_size)
        checker_kwargs = {"kernels": config.kernels}
        if config.checker == "two_stage":
            checker_kwargs["fine_stage"] = config.fine_stage
        cache_size = config.resolved_collision_cache()
        if cache_size:
            checker_kwargs["cache_size"] = cache_size
            checker_kwargs["cache_quantum"] = config.cache_quantum
        edge_cache_size = config.resolved_edge_cache()
        if edge_cache_size:
            checker_kwargs["edge_cache_size"] = edge_cache_size
            checker_kwargs.setdefault("cache_quantum", config.cache_quantum)
        self.checker = make_checker(
            config.checker, robot, task.environment, resolution, **checker_kwargs
        )

        def new_strategy():
            return make_strategy(
                config.neighbor_strategy,
                robot.dof,
                steering_insert=config.steering_insert,
                approx_neighborhood=config.approx_neighborhood,
                capacity=config.simbr_capacity,
                kd_rebuild_every=config.kd_rebuild_every,
                approx_scope=config.approx_scope,
                neighborhood_cache=config.resolved_neighborhood_cache(),
            )

        self.strategies = (new_strategy(), new_strategy())
        sampler_cls = {"numpy": NumpySampler, "lfsr": LFSRSampler}.get(config.sampler)
        if sampler_cls is None:
            raise KeyError(f"unknown sampler {config.sampler!r}; use 'numpy' or 'lfsr'")
        self.sampler = sampler_cls(robot.config_lo, robot.config_hi, seed=config.seed)

    # ------------------------------------------------------------------- plan

    def plan(self) -> PlanResult:
        """Grow both trees until they connect or the budget runs out."""
        config = self.config
        counter = OpCounter()
        trees = (ExpTree(self.task.start), ExpTree(self.task.goal))
        self.trees = trees
        self.strategies[0].insert(trees[0].root, self.task.start, counter=counter)
        self.strategies[1].insert(trees[1].root, self.task.goal, counter=counter)

        state = _RunState()
        if config.op_budget is not None:
            state.op_budget = config.op_budget
        if config.deadline_s is not None:
            state.deadline = time.monotonic() + config.deadline_s
        from repro.core import cancel as _cancel
        state.cancel = _cancel.active()

        from repro.faults import get_injector
        self._injector = get_injector()
        self.checker._injector = self._injector

        obs = PhaseRecorder()
        plan_started = obs.tracer.now()
        plan_span = obs.tracer.span(
            "plan",
            robot=self.robot.name,
            dof=self.robot.dof,
            checker=config.checker,
            strategy=config.neighbor_strategy,
            max_samples=config.max_samples,
            wave_width=config.wave_width,
            mode="connect",
        )
        with plan_span:
            if config.wave_width > 1:
                bridge = self._run_wave(counter, obs, state)
            else:
                bridge = self._run_scalar(counter, obs, state)

        result = self._result(bridge, counter, state)
        if obs.registry.enabled:
            self._record_run_metrics(obs, result, counter,
                                     obs.tracer.now() - plan_started)
        return result

    # --------------------------------------------------------------- run loops

    def _expired(self, state, macs_fn) -> bool:
        """Budget / cancellation poll shared by both loops and the greedy
        connect; mirrors ``_RunState.budget_expired`` but takes the current
        MAC total as a callable so wave commits can include their
        sub-counter."""
        if state.cancel is not None and state.cancel():
            state.degraded_reason = "cancelled"
            return True
        if state.deadline is not None and time.monotonic() >= state.deadline:
            state.degraded_reason = "deadline"
            return True
        if state.op_budget is not None and macs_fn() >= state.op_budget:
            state.degraded_reason = "op_budget"
            return True
        return False

    def _run_scalar(self, counter, obs, state) -> Optional[Tuple[int, int]]:
        """One sample per round: the reference sequential loop."""
        config = self.config
        trees = self.trees
        injector = self._injector
        check_budget = (state.deadline is not None or state.op_budget is not None
                        or state.cancel is not None)
        macs_fn = counter.total_macs
        for iteration in range(config.max_samples):
            if check_budget and self._expired(state, macs_fn):
                break
            if injector is not None:
                injector.fire("planner.round", detail=f"iteration {iteration}")
            snapshot = counter.snapshot()
            with obs.phase("sample", counter):
                x_rand = self.sampler.sample(counter=counter)
            active = iteration % 2
            new_id = self._extend_tree(active, x_rand, counter, obs)
            accepted = new_id is not None
            bridge = None
            if accepted:
                target = trees[active].point(new_id)
                other, reached = self._connect(
                    1 - active, target, counter, obs, state,
                    check_budget, macs_fn,
                )
                if reached:
                    bridge = (new_id, other) if active == 0 else (other, new_id)
            state.rounds.append(
                self._round_record(counter.diff(snapshot), accepted)
            )
            if bridge is not None:
                return bridge
        return None

    def _run_wave(self, counter, obs, state) -> Optional[Tuple[int, int]]:
        """Wavefront loop: W samples per wave through batched kernels.

        Stage 1 (speculative, batched): per sample, the nearest node of its
        alternating active tree comes from a snapshot distance-matrix
        einsum; the speculative extension edges are steered and validated
        whole in one ``motion_results_batch`` call, and for every predicted
        accept the whole-segment connect edge toward the other tree's
        snapshot-nearest node is validated in a second batch.

        Stage 2 (commit, in sample order): each sample replays the exact
        scalar round into its own sub-counter — real strategy nearest,
        steer, then either a replay of the speculated edge result (when the
        committed edge bitwise equals the speculation) or a scalar
        re-check.  Merging the integer-weighted sub-counters reproduces the
        scalar totals bit-for-bit, so plans and counters are identical at
        every W.
        """
        config = self.config
        trees = self.trees
        injector = self._injector
        width_cfg = config.wave_width
        check_budget = (state.deadline is not None or state.op_budget is not None
                        or state.cancel is not None)
        start = 0
        while start < config.max_samples:
            if injector is not None:
                injector.fire("planner.round", detail=f"wave at {start}")
            width = min(width_cfg, config.max_samples - start)
            subs = [OpCounter() for _ in range(width)]
            xs = np.empty((width, self.robot.dof), dtype=float)
            for j in range(width):
                with obs.phase("sample", subs[j]):
                    xs[j] = self.sampler.sample(counter=subs[j])

            # ---------------- stage 1: speculative batched evaluation
            spec = self._speculate(xs, width, start, obs)

            # ---------------- stage 2: in-order commit
            for j in range(width):
                sub = subs[j]
                macs_fn = lambda: counter.total_macs() + sub.total_macs()
                if check_budget and self._expired(state, macs_fn):
                    counter.merge(sub)
                    return None
                active = (start + j) % 2
                new_id = self._commit_extend(active, xs[j], sub, obs, spec, j)
                accepted = new_id is not None
                bridge = None
                if accepted:
                    target = trees[active].point(new_id)
                    other, reached = self._connect(
                        1 - active, target, sub, obs, state,
                        check_budget, macs_fn,
                        spec=spec, spec_j=j,
                    )
                    if reached:
                        bridge = (new_id, other) if active == 0 else (other, new_id)
                state.rounds.append(
                    self._round_record(sub, accepted, wave_width=width)
                )
                counter.merge(sub)
                if bridge is not None:
                    return bridge
                if state.degraded_reason is not None:
                    return None
            start += width
        return None

    def _speculate(self, xs, width, start, obs):
        """Stage-1 speculation: snapshot nearest + batched edge validation.

        Returns a dict with per-sample speculative extension edges
        (``ext_key``/``ext_new``/``ext_res``) and whole-segment connect
        edges (``con_key``/``con_end``/``con_res``).  Everything here is a
        pure prediction — commits verify bitwise equality before replaying
        any stored result.
        """
        trees = self.trees
        points = (trees[0].points_view(), trees[1].points_view())
        ext_key = [None] * width
        ext_new: List[Optional[np.ndarray]] = [None] * width
        ext_res: List[Optional[tuple]] = [None] * width
        con_key = [None] * width
        con_end: List[Optional[np.ndarray]] = [None] * width
        con_res: List[Optional[tuple]] = [None] * width
        with obs.tracer.span("wave", width=width,
                             nodes=len(trees[0]) + len(trees[1])):
            # One distance matrix per tree (both are needed: extensions hit
            # the alternating active tree, connects hit the other one).
            d_sq = []
            for side in (0, 1):
                diffs = points[side][None, :, :] - xs[:, None, :]
                d_sq.append(np.einsum("wnd,wnd->wn", diffs, diffs))
            seg_starts, seg_ends, seg_js = [], [], []
            for j in range(width):
                active = (start + j) % 2
                k = int(np.argmin(d_sq[active][j]))
                dist = float(np.linalg.norm(points[active][k] - xs[j]))
                if dist <= 1e-12:
                    continue
                x_new = self._steer(points[active][k], xs[j], dist)
                ext_key[j] = k
                ext_new[j] = x_new
                seg_starts.append(points[active][k])
                seg_ends.append(x_new)
                seg_js.append(j)
            if seg_js:
                for j, res in zip(seg_js, self.checker.motion_results_batch(
                        np.stack(seg_starts), np.stack(seg_ends))):
                    ext_res[j] = res
            # Speculative whole-segment connects for the predicted accepts.
            seg_starts, seg_ends, seg_js = [], [], []
            for j in range(width):
                res = ext_res[j]
                if res is None or res[0]:
                    continue
                other = 1 - (start + j) % 2
                x_new = ext_new[j]
                d = points[other] - x_new[None, :]
                k = int(np.argmin(np.einsum("nd,nd->n", d, d)))
                near = points[other][k]
                if float(np.linalg.norm(near - x_new)) <= 1e-9:
                    continue
                con_key[j] = k
                con_end[j] = x_new
                seg_starts.append(near)
                seg_ends.append(x_new)
                seg_js.append(j)
            if seg_js:
                for j, res in zip(seg_js, self.checker.motion_results_batch(
                        np.stack(seg_starts), np.stack(seg_ends))):
                    con_res[j] = res
        return {
            "ext_key": ext_key, "ext_new": ext_new, "ext_res": ext_res,
            "con_key": con_key, "con_end": con_end, "con_res": con_res,
        }

    # -------------------------------------------------------------- internals

    def _extend_tree(self, side: int, target, counter, obs) -> Optional[int]:
        """One bounded step of tree ``side`` toward ``target`` (scalar).

        Returns the new node id, or None when the step is blocked or the
        target coincides with the nearest node.
        """
        strategy = self.strategies[side]
        injector = self._injector
        with obs.phase("nearest", counter):
            found = strategy.nearest(target, counter=counter)
        nearest_key, nearest_point, dist = found
        if dist <= 1e-12:
            return None
        with obs.phase("steer", counter):
            counter.record("steer", dim=self.robot.dof)
            x_new = self._steer(nearest_point, target, dist)
        if injector is not None:
            injector.fire("planner.collision")
        with obs.phase("collision", counter):
            blocked = self.checker.motion_in_collision(
                nearest_point, x_new, counter=counter
            )
        if blocked:
            return None
        return self._add(side, x_new, nearest_key, nearest_point, counter)

    def _commit_extend(self, side: int, target, counter, obs, spec, j) -> Optional[int]:
        """Commit-time extension: scalar semantics + speculation replay."""
        strategy = self.strategies[side]
        injector = self._injector
        with obs.phase("nearest", counter):
            found = strategy.nearest(target, counter=counter)
        nearest_key, nearest_point, dist = found
        if dist <= 1e-12:
            return None
        with obs.phase("steer", counter):
            counter.record("steer", dim=self.robot.dof)
            x_new = self._steer(nearest_point, target, dist)
        if injector is not None:
            injector.fire("planner.collision")
        used_spec = (
            spec["ext_res"][j] is not None
            and nearest_key == spec["ext_key"][j]
            and np.array_equal(x_new, spec["ext_new"][j])
        )
        with obs.phase("collision", counter):
            if used_spec:
                blocked = self._replay_motion(spec["ext_res"][j], counter)
            else:
                blocked = self.checker.motion_in_collision(
                    nearest_point, x_new, counter=counter
                )
        if blocked:
            return None
        return self._add(side, x_new, nearest_key, nearest_point, counter)

    def _connect(self, side: int, target, counter, obs, state,
                 check_budget, macs_fn, spec=None, spec_j=None):
        """Greedily extend tree ``side`` toward ``target`` until blocked.

        Returns ``(node, reached)``: the tree node closest to the advance
        front (the bridge node when ``reached``), or ``(None, False)`` when
        not a single step succeeded.  The whole segment is validated first
        as one edge; only a blocked segment falls back to chunk-wise
        advance.  Budgets and race cancellation are polled per chunk so a
        long greedy connect cannot overshoot a deadline.
        """
        strategy = self.strategies[side]
        tree = self.trees[side]
        injector = self._injector
        with obs.phase("nearest", counter):
            found = strategy.nearest(target, counter=counter)
        nearest_key, nearest_point, dist = found
        if dist <= 1e-9:
            # The trees already touch: the nearest node IS the bridge.
            return nearest_key, True
        if injector is not None:
            injector.fire("connect.extend", detail=f"segment {dist:.3f}")
        # Whole-segment attempt: one ladder, one FK batch, one kernel pass.
        used_spec = (
            spec is not None
            and spec["con_res"][spec_j] is not None
            and nearest_key == spec["con_key"][spec_j]
            and np.array_equal(target, spec["con_end"][spec_j])
        )
        with obs.phase("collision", counter):
            if used_spec:
                blocked = self._replay_motion(spec["con_res"][spec_j], counter)
            else:
                blocked = self.checker.motion_in_collision(
                    nearest_point, target, counter=counter
                )
        if not blocked:
            node = self._add(side, target.copy(), nearest_key, nearest_point, counter)
            return node, True
        if dist <= self.chunk:
            # The blocked segment is at most one chunk long: nothing to
            # salvage at chunk granularity.
            return None, False
        # Chunk-wise advance along the free prefix of the blocked segment.
        cur_key, cur_point = nearest_key, nearest_point
        last = None
        while True:
            if check_budget and self._expired(state, macs_fn):
                return last, False
            remaining = float(np.linalg.norm(target - cur_point))
            if remaining <= 1e-9:
                return cur_key, True
            if injector is not None:
                injector.fire("connect.extend", detail=f"chunk {remaining:.3f}")
            if remaining <= self.chunk:
                nxt = target.copy()
            else:
                nxt = cur_point + (self.chunk / remaining) * (target - cur_point)
            with obs.phase("collision", counter):
                blocked = self.checker.motion_in_collision(
                    cur_point, nxt, counter=counter
                )
            if blocked:
                return last, False
            node = self._add(side, nxt, cur_key, cur_point, counter)
            last = node
            cur_key, cur_point = node, nxt

    def _add(self, side: int, x_new, parent_key, parent_point, counter) -> int:
        edge = float(np.linalg.norm(x_new - parent_point))
        node_id = self.trees[side].add(x_new, parent_key, edge)
        self.strategies[side].insert(
            node_id, x_new, nearest_key=parent_key, counter=counter
        )
        return node_id

    def _steer(self, origin: np.ndarray, target: np.ndarray, dist: float) -> np.ndarray:
        """Move from ``origin`` toward ``target`` by at most one step."""
        if dist <= self.step:
            return target.copy()
        return origin + (self.step / dist) * (target - origin)

    def _replay_motion(self, result, counter) -> bool:
        """Commit a speculatively validated edge from its stored result."""
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        verdict, events = result
        counter.merge(events)
        return verdict

    # ---------------------------------------------------------------- results

    def _result(self, bridge, counter, state) -> PlanResult:
        trees = self.trees
        rounds = state.rounds
        num_nodes = len(trees[0]) + len(trees[1])
        if bridge is not None:
            forward = trees[0].path_to(bridge[0])
            backward = trees[1].path_to(bridge[1])
            if (backward and forward
                    and float(np.linalg.norm(forward[-1] - backward[-1])) <= 1e-9):
                backward = backward[:-1]  # the bridge point appears once
            path = forward + backward[::-1]
            return PlanResult(
                success=True,
                path=path,
                path_cost=path_length(path),
                num_nodes=num_nodes,
                iterations=len(rounds),
                counter=counter,
                rounds=rounds,
                goal_node=bridge[0],
                first_solution_iteration=len(rounds) - 1,
                best_goal_distance=0.0,
            )
        status = "complete" if state.degraded_reason is None else "degraded"
        path: List[np.ndarray] = []
        goal_distance = None
        if state.degraded_reason is not None and len(trees[0]) > 0:
            # Anytime best-so-far: every start-tree edge was collision
            # checked at insertion, so the path to ANY node is a valid
            # collision-free prefix; return the one ending closest to the
            # goal (cost-to-come plus straight-line remainder).
            points = trees[0].points_view()
            remainder = np.linalg.norm(points - self.task.goal[None, :], axis=1)
            score = trees[0].costs_view() + remainder
            best_node = int(np.argmin(score))
            path = trees[0].path_to(best_node)
            goal_distance = float(remainder[best_node])
        return PlanResult(
            success=False,
            path=path,
            path_cost=float("inf"),
            num_nodes=num_nodes,
            iterations=len(rounds),
            counter=counter,
            rounds=rounds,
            status=status,
            degraded_reason=state.degraded_reason,
            best_goal_distance=goal_distance,
        )

    def cache_stats(self) -> dict:
        """Hit/miss statistics of the software caches (empty when disabled)."""
        stats = {}
        if self.checker.config_cache is not None:
            stats["collision"] = self.checker.config_cache.stats()
        if self.checker.edge_cache is not None:
            stats["edge"] = self.checker.edge_cache.stats()
        for side, strategy in enumerate(self.strategies):
            index = getattr(strategy, "tree", None)
            cache = getattr(index, "neighborhood_cache", None)
            if cache is not None:
                stats[f"neighborhood{side}"] = cache.stats()
        return stats

    def _record_run_metrics(self, obs, result, counter, elapsed_s: float) -> None:
        registry = obs.registry
        registry.counter("repro_plans_total", "Completed planning runs").inc(
            outcome="success" if result.success else "failure"
        )
        registry.counter("repro_plan_rounds_total", "Sampling rounds executed").inc(
            result.iterations
        )
        registry.histogram(
            "repro_plan_seconds", "End-to-end planner wall time"
        ).observe(elapsed_s)
        for category, macs in counter.macs_by_category().items():
            registry.counter(
                "repro_macs_total", "MAC-equivalents by cost-model category"
            ).inc(macs, category=category)

    def _round_record(self, diff: OpCounter, accepted: bool,
                      wave_width: int = 1) -> RoundRecord:
        loads = {"ns": 0.0, "cc": 0.0, "maint": 0.0, "other": 0.0}
        for kind, macs in diff.macs.items():
            if kind in _NS_KINDS:
                loads["ns"] += macs
            elif kind in _CC_KINDS:
                loads["cc"] += macs
            elif kind in _MAINT_KINDS:
                loads["maint"] += macs
            else:
                loads["other"] += macs
        return RoundRecord(
            ns_macs=loads["ns"],
            cc_macs=loads["cc"],
            maint_macs=loads["maint"],
            other_macs=loads["other"],
            accepted=accepted,
            events=dict(diff.events),
            wave_width=wave_width,
        )
