"""Trajectory time-parameterization: turning paths into executable motion.

The planner produces a geometric C-space path; a robot executes a *timed*
trajectory bounded by per-joint velocity and acceleration limits.  This
module applies trapezoidal velocity profiles segment by segment (the robot
stops at interior waypoints, the standard conservative scheme), yielding
the execution time and energy-relevant quantities the paper's path-cost
argument is ultimately about: "higher path cost means the robot has to
consume much more energy and time to move and act" (Section III-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class TrajectorySegment:
    """One timed straight segment with a trapezoidal speed profile.

    Attributes:
        start / end: segment endpoints in C-space.
        duration: traversal time.
        peak_speed: maximum C-space speed reached.
        cruise_time: time at ``peak_speed`` (zero for triangular profiles).
    """

    start: np.ndarray
    end: np.ndarray
    duration: float
    peak_speed: float
    cruise_time: float

    @property
    def length(self) -> float:
        return float(np.linalg.norm(self.end - self.start))


@dataclass(frozen=True)
class Trajectory:
    """A timed sequence of segments covering a waypoint path."""

    segments: tuple

    @property
    def duration(self) -> float:
        """Total execution time."""
        return float(sum(s.duration for s in self.segments))

    @property
    def length(self) -> float:
        """Total C-space length."""
        return float(sum(s.length for s in self.segments))

    def state_at(self, t: float) -> np.ndarray:
        """Configuration at time ``t`` (clamped to the trajectory's span)."""
        if t <= 0.0:
            return self.segments[0].start.copy()
        remaining = t
        for segment in self.segments:
            if remaining <= segment.duration:
                fraction = _profile_fraction(segment, remaining)
                return segment.start + fraction * (segment.end - segment.start)
            remaining -= segment.duration
        return self.segments[-1].end.copy()


def _profile_fraction(segment: TrajectorySegment, t: float) -> float:
    """Distance fraction covered after time ``t`` of a trapezoidal profile."""
    length = segment.length
    if length <= 0.0:
        return 1.0
    ramp_time = (segment.duration - segment.cruise_time) / 2.0
    v = segment.peak_speed
    if ramp_time <= 0.0:
        return min(1.0, t * v / length)
    accel = v / ramp_time
    if t <= ramp_time:
        covered = 0.5 * accel * t * t
    elif t <= ramp_time + segment.cruise_time:
        covered = 0.5 * accel * ramp_time**2 + v * (t - ramp_time)
    else:
        t_dec = t - ramp_time - segment.cruise_time
        covered = (
            0.5 * accel * ramp_time**2
            + v * segment.cruise_time
            + v * t_dec
            - 0.5 * accel * t_dec**2
        )
    return min(1.0, covered / length)


def time_parameterize(
    path: Sequence[np.ndarray],
    max_speed: float,
    max_accel: float,
) -> Trajectory:
    """Time-parameterize ``path`` with per-segment trapezoidal profiles.

    Args:
        path: waypoint configurations (at least two).
        max_speed: C-space speed limit (units/s).
        max_accel: C-space acceleration limit (units/s^2).

    Raises ValueError on degenerate inputs.
    """
    if len(path) < 2:
        raise ValueError("path must contain at least two waypoints")
    if max_speed <= 0 or max_accel <= 0:
        raise ValueError("speed and acceleration limits must be positive")
    segments: List[TrajectorySegment] = []
    for a, b in zip(path[:-1], path[1:]):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        length = float(np.linalg.norm(b - a))
        if length <= 1e-12:
            continue
        # Distance needed to reach max_speed and brake again.
        ramp_distance = max_speed**2 / max_accel
        if length >= ramp_distance:
            # Trapezoid: ramp up, cruise, ramp down.
            ramp_time = max_speed / max_accel
            cruise = (length - ramp_distance) / max_speed
            duration = 2.0 * ramp_time + cruise
            peak = max_speed
        else:
            # Triangle: never reaches max_speed.
            peak = math.sqrt(length * max_accel)
            duration = 2.0 * peak / max_accel
            cruise = 0.0
        segments.append(
            TrajectorySegment(
                start=a, end=b, duration=duration, peak_speed=peak, cruise_time=cruise
            )
        )
    if not segments:
        raise ValueError("path has zero length")
    return Trajectory(segments=tuple(segments))
