"""Operation counting: the MAC-level computational cost model.

Every "computational cost" axis in the paper's figures (Figs 3, 6, 8, 10,
14, 16, 19) is an amount of arithmetic work, dominated by the 16-bit
multiply-accumulate (MAC) operations the hardware datapath executes
(Section IV-A budgets 168 MAC units).  The planner layers report *events*
(one SAT check, one distance calculation, ...) to an :class:`OpCounter`,
which converts each event into MAC-equivalents using the table below and
accumulates per-category totals.

MAC cost table (per event; ``d`` is the relevant dimensionality)
----------------------------------------------------------------

``sat_obb_obb`` (3D)
    Ericson's 15-axis test: change-of-basis product ``R = A^T B`` (27 mult +
    18 add ≈ 45 MACs), |R| bias (9), frame-local translation (9 MACs + 3
    sub), 6 face-axis tests (≈4 MACs each) and 9 edge-cross tests (≈8 MACs
    each).  Total ≈ **150**.
``sat_obb_obb`` (2D)
    Analytic 4-axis variant: 2x2 basis product (8), translation (4), 4 axis
    tests (≈3 each).  Total ≈ **24**.
``sat_aabb_obb`` (3D / 2D)
    Same axis tests but no change-of-basis product and trivial projections
    on the world axes: ≈ **66 / 14** — the "much more computationally
    efficient" first-stage check of Section III-A.
``sat_aabb_aabb`` (3D / 2D)
    One comparison pair per axis: **6 / 4**.
``aabb_derive``
    Deriving a body OBB's world AABB (``|R| e`` per axis): **3 d**.
``dist``
    Squared distance + sqrt in d-dim C-space: **d + 1**.
``mindist``
    Per-dimension clamp (2 ops folded to 1 MAC-equivalent) plus square-
    accumulate: **2 d**.
``enlargement``
    Two d-term volume products plus min/max per axis: **3 d**.
``mbr_update``
    Min/max per axis: **d**.
``insert_direct``
    The steering-informed O(1) placement — a buffer write: **1**.
``split``
    Sorting/partitioning an overfull node (amortised): **4 d**.
``steer``
    Interpolation toward the sample: **d**.
``sample``
    One LFSR draw + scale per dimension: **d**.
``plane_compare``
    KD-tree splitting-plane test: **1**.
``rebuild_item``
    One item moved during a KD rebuild level: **1**.
``grid_lookup``
    CODAcc occupancy-grid voxel probe (address arithmetic): **3**.
``buffer_read`` / ``fifo_op``
    Missing-neighbor buffer / FIFO traffic: **1**.
``cost_update``
    EXP-tree path-cost add/compare during choose-parent/rewire: **2**.

The table deliberately models the *hardware datapath*, not the Python
implementation executing it, so Python-level shortcuts (vectorised scans)
do not distort the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional


@lru_cache(maxsize=None)
def mac_cost(kind: str, dim: Optional[int]) -> float:
    """MAC-equivalents for one event of ``kind`` at dimensionality ``dim``."""
    d = dim if dim is not None else 3
    table = {
        "sat_obb_obb": 150.0 if d == 3 else 24.0,
        "sat_aabb_obb": 66.0 if d == 3 else 14.0,
        "sat_aabb_aabb": 6.0 if d == 3 else 4.0,
        "aabb_derive": 3.0 * d,
        "dist": d + 1.0,
        "mindist": 2.0 * d,
        "enlargement": 3.0 * d,
        "mbr_update": float(d),
        "insert_direct": 1.0,
        "split": 4.0 * d,
        "steer": float(d),
        "sample": float(d),
        "plane_compare": 1.0,
        "rebuild_item": 1.0,
        "grid_lookup": 3.0,
        "buffer_read": 1.0,
        "fifo_op": 1.0,
        "cost_update": 2.0,
    }
    if kind not in table:
        raise KeyError(f"unknown operation kind {kind!r}")
    return table[kind]


# Category grouping used for the Fig 3 cost-breakdown plot.
CATEGORY_OF = {
    "sat_obb_obb": "collision_check",
    "sat_aabb_obb": "collision_check",
    "sat_aabb_aabb": "collision_check",
    "aabb_derive": "collision_check",
    "grid_lookup": "collision_check",
    "dist": "neighbor_search",
    "mindist": "neighbor_search",
    "plane_compare": "neighbor_search",
    "buffer_read": "neighbor_search",
    "enlargement": "tree_maintenance",
    "mbr_update": "tree_maintenance",
    "insert_direct": "tree_maintenance",
    "split": "tree_maintenance",
    "rebuild_item": "tree_maintenance",
    "sample": "other",
    "steer": "other",
    "fifo_op": "other",
    "cost_update": "other",
}


@dataclass
class OpCounter:
    """Accumulates event counts and MAC-equivalent totals per kind.

    Attributes:
        events: number of events seen per kind.
        macs: MAC-equivalents accumulated per kind.
    """

    events: Dict[str, int] = field(default_factory=dict)
    macs: Dict[str, float] = field(default_factory=dict)

    def record(self, kind: str, dim: Optional[int] = None, n: int = 1) -> None:
        """Record ``n`` events of ``kind`` at dimensionality ``dim``."""
        self.events[kind] = self.events.get(kind, 0) + n
        self.macs[kind] = self.macs.get(kind, 0.0) + n * mac_cost(kind, dim)

    def total_macs(self) -> float:
        """Total MAC-equivalents across all kinds."""
        return sum(self.macs.values())

    def total_events(self) -> int:
        """Total events across all kinds."""
        return sum(self.events.values())

    def macs_by_category(self) -> Dict[str, float]:
        """MAC totals grouped into the Fig 3 breakdown categories."""
        out: Dict[str, float] = {}
        for kind, macs in self.macs.items():
            category = CATEGORY_OF.get(kind, "other")
            out[category] = out.get(category, 0.0) + macs
        return out

    def category_macs(self, category: str) -> float:
        """MAC total for one breakdown category."""
        return self.macs_by_category().get(category, 0.0)

    def to_dict(self) -> Dict[str, Dict]:
        """Plain-data snapshot (``{"events": ..., "macs": ...}``).

        JSON-safe and picklable without custom logic, so service workers
        can ship op counts back across process boundaries and telemetry
        can persist them; :meth:`from_dict` is the exact inverse.
        """
        return {"events": dict(self.events), "macs": dict(self.macs)}

    @classmethod
    def from_dict(cls, data: Dict[str, Dict]) -> "OpCounter":
        """Rebuild a counter from :meth:`to_dict` output."""
        return cls(
            events={k: int(v) for k, v in data.get("events", {}).items()},
            macs={k: float(v) for k, v in data.get("macs", {}).items()},
        )

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's totals into this one."""
        for kind, n in other.events.items():
            self.events[kind] = self.events.get(kind, 0) + n
        for kind, macs in other.macs.items():
            self.macs[kind] = self.macs.get(kind, 0.0) + macs

    def snapshot(self) -> "OpCounter":
        """Independent copy of the current totals."""
        return OpCounter(events=dict(self.events), macs=dict(self.macs))

    def diff(self, earlier: "OpCounter") -> "OpCounter":
        """Counter holding the work done since ``earlier`` was snapshotted."""
        out = OpCounter()
        for kind, n in self.events.items():
            delta = n - earlier.events.get(kind, 0)
            if delta:
                out.events[kind] = delta
        for kind, macs in self.macs.items():
            delta = macs - earlier.macs.get(kind, 0.0)
            if delta:
                out.macs[kind] = delta
        return out

    def reset(self) -> None:
        """Clear all totals."""
        self.events.clear()
        self.macs.clear()
