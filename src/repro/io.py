"""JSON persistence for environments, tasks, and planning results.

Round-trippable serialisation so workloads can be pinned to disk and
planning outcomes archived — the glue a downstream user needs to share
regression cases or compare planner versions on identical inputs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.core.metrics import PlanResult
from repro.core.world import Environment, PlanningTask
from repro.geometry.obb import OBB

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------- encoding


def obb_to_dict(obb: OBB) -> Dict:
    """OBB -> plain dict (lists, no numpy)."""
    return {
        "center": obb.center.tolist(),
        "half_extents": obb.half_extents.tolist(),
        "rotation": obb.rotation.tolist(),
    }


def obb_from_dict(data: Dict) -> OBB:
    """Inverse of :func:`obb_to_dict`."""
    return OBB(
        np.asarray(data["center"], dtype=float),
        np.asarray(data["half_extents"], dtype=float),
        np.asarray(data["rotation"], dtype=float),
    )


def environment_to_dict(environment: Environment) -> Dict:
    """Environment -> plain dict."""
    return {
        "workspace_dim": environment.workspace_dim,
        "size": environment.size,
        "obstacles": [obb_to_dict(o) for o in environment.obstacles],
    }


def environment_from_dict(data: Dict) -> Environment:
    """Inverse of :func:`environment_to_dict`."""
    return Environment(
        int(data["workspace_dim"]),
        float(data["size"]),
        [obb_from_dict(o) for o in data["obstacles"]],
    )


def task_to_dict(task: PlanningTask) -> Dict:
    """PlanningTask -> plain dict."""
    return {
        "robot_name": task.robot_name,
        "environment": environment_to_dict(task.environment),
        "start": task.start.tolist(),
        "goal": task.goal.tolist(),
        "task_id": task.task_id,
    }


def task_from_dict(data: Dict) -> PlanningTask:
    """Inverse of :func:`task_to_dict`."""
    return PlanningTask(
        robot_name=data["robot_name"],
        environment=environment_from_dict(data["environment"]),
        start=np.asarray(data["start"], dtype=float),
        goal=np.asarray(data["goal"], dtype=float),
        task_id=int(data.get("task_id", 0)),
    )


def result_to_dict(result: PlanResult) -> Dict:
    """PlanResult -> plain dict (path, cost, op counts; rounds omitted)."""
    return {
        "success": result.success,
        "path": [p.tolist() for p in result.path],
        "path_cost": result.path_cost if np.isfinite(result.path_cost) else None,
        "num_nodes": result.num_nodes,
        "iterations": result.iterations,
        "first_solution_iteration": result.first_solution_iteration,
        "events": dict(result.counter.events),
        "macs": dict(result.counter.macs),
        "total_macs": result.total_macs,
        "neighborhood_macs": result.neighborhood_macs,
        "status": result.status,
        "degraded_reason": result.degraded_reason,
        "best_goal_distance": result.best_goal_distance,
    }


def result_from_dict(data: Dict) -> PlanResult:
    """Inverse of :func:`result_to_dict` (rounds are not archived).

    The counter is rebuilt via :meth:`OpCounter.from_dict`, so a result
    that crossed a JSON file or a process boundary still answers
    ``total_macs`` / ``macs_by_category`` queries exactly.
    """
    from repro.core.counters import OpCounter

    cost = data.get("path_cost")
    return PlanResult(
        success=bool(data["success"]),
        path=[np.asarray(p, dtype=float) for p in data.get("path", [])],
        path_cost=float(cost) if cost is not None else float("inf"),
        num_nodes=int(data.get("num_nodes", 0)),
        iterations=int(data.get("iterations", 0)),
        counter=OpCounter.from_dict(
            {"events": data.get("events", {}), "macs": data.get("macs", {})}
        ),
        first_solution_iteration=data.get("first_solution_iteration"),
        neighborhood_macs=float(data.get("neighborhood_macs", 0.0)),
        status=str(data.get("status", "complete")),
        degraded_reason=data.get("degraded_reason"),
        best_goal_distance=data.get("best_goal_distance"),
    )


# --------------------------------------------------------------------- files


def save_task(task: PlanningTask, path: PathLike) -> None:
    """Write a task to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(task_to_dict(task), indent=2))


def load_task(path: PathLike) -> PlanningTask:
    """Read a task from a JSON file."""
    return task_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_tasks(tasks: List[PlanningTask], path: PathLike) -> None:
    """Write a task suite to a JSON file."""
    payload = [task_to_dict(t) for t in tasks]
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_tasks(path: PathLike) -> List[PlanningTask]:
    """Read a task suite from a JSON file."""
    payload = json.loads(pathlib.Path(path).read_text())
    return [task_from_dict(d) for d in payload]


def save_result(result: PlanResult, path: PathLike) -> None:
    """Write a planning result summary to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike) -> PlanResult:
    """Read a planning result summary back from a JSON file."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))
