"""Octree spatial subdivision: the Section VI comparison structure.

The paper's Related Work weighs Octrees for collision checking and rejects
them for resource-constrained planners: "Because representation precision
is an important factor ... high resolution is typically required, bringing
very high memory consumption" (hundreds of megabytes for environment
modelling, e.g. 130 MB).  This implementation makes that argument
measurable: an occupancy octree over the obstacle set with configurable
maximum depth, per-node memory accounting, and the same conservative
query semantics as the other coarse checkers (a cell partially covered by
an obstacle is occupied).

The tree is adaptive — fully-free and fully-occupied regions collapse to
single leaves — so its memory sits between the dense occupancy grid and
the R-tree, trading accuracy against node count through ``max_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb


@dataclass(eq=False)
class _OctNode:
    """One octree cell: fully free, fully occupied, or subdivided."""

    box: AABB
    state: str  # "free" | "occupied" | "mixed"
    children: Optional[List["_OctNode"]] = None


class CollisionOctree:
    """Occupancy octree (quadtree in 2D) over a static obstacle set.

    The tree's domain is exactly the workspace box ``[0, size]^dim``;
    obstacle geometry outside it (a rotated box's corner can poke past the
    boundary) is not represented, and point queries outside the domain
    return free.

    Args:
        obstacles: obstacle OBBs.
        size: workspace side length (the root cell is ``[0, size]^dim``).
        dim: workspace dimension (2 or 3).
        max_depth: maximum subdivision depth; the leaf resolution is
            ``size / 2**max_depth``.  Cells still intersecting an obstacle
            boundary at ``max_depth`` are marked occupied (conservative).
    """

    def __init__(self, obstacles: Sequence[OBB], size: float, dim: int, max_depth: int = 6):
        if dim not in (2, 3):
            raise ValueError("dim must be 2 or 3")
        if size <= 0:
            raise ValueError("size must be positive")
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        self.dim = dim
        self.size = float(size)
        self.max_depth = max_depth
        self._obstacles = list(obstacles)
        root_box = AABB(np.zeros(dim), np.full(dim, size))
        self._node_count = 0
        self.root = self._build(root_box, depth=0, candidates=list(range(len(obstacles))))

    # ------------------------------------------------------------------ build

    def _build(self, box: AABB, depth: int, candidates: List[int]) -> _OctNode:
        self._node_count += 1
        touching = [
            i for i in candidates if aabb_intersects_obb(box, self._obstacles[i])
        ]
        if not touching:
            return _OctNode(box, "free")
        if any(self._cell_inside(box, self._obstacles[i]) for i in touching):
            return _OctNode(box, "occupied")
        if depth >= self.max_depth:
            # Boundary cell at maximum resolution: conservatively occupied.
            return _OctNode(box, "occupied")
        children = [
            self._build(child_box, depth + 1, touching) for child_box in _octants(box)
        ]
        states = {child.state for child in children}
        if states == {"free"}:
            return _OctNode(box, "free")
        if states == {"occupied"}:
            return _OctNode(box, "occupied")
        return _OctNode(box, "mixed", children=children)

    @staticmethod
    def _cell_inside(box: AABB, obstacle: OBB) -> bool:
        """True when every corner of ``box`` is inside ``obstacle``."""
        return all(obstacle.contains_point(corner) for corner in box.corners())

    # ---------------------------------------------------------------- queries

    def query_obb(self, obb: OBB, counter=None) -> bool:
        """True when ``obb`` touches any occupied cell (conservative)."""
        stack = [self.root]
        dim = self.dim
        while stack:
            node = stack.pop()
            if counter is not None:
                counter.record("sat_aabb_obb", dim=dim)
            if not aabb_intersects_obb(node.box, obb):
                continue
            if node.state == "occupied":
                return True
            if node.state == "mixed":
                stack.extend(node.children)
        return False

    def point_occupied(self, point: np.ndarray) -> bool:
        """Occupancy of the cell containing ``point``."""
        point = np.asarray(point, dtype=float)
        node = self.root
        while True:
            if node.state != "mixed":
                return node.state == "occupied"
            for child in node.children:
                if child.box.contains_point(point):
                    node = child
                    break
            else:
                return False  # outside the workspace

    # ------------------------------------------------------------ diagnostics

    @property
    def node_count(self) -> int:
        return self._node_count

    def memory_bytes(self) -> int:
        """Storage estimate: per node, 2 state bits + a child pointer word.

        A compact hardware octree stores ~4 bytes per node (state + child
        index); this is what the Section VI memory argument scales with.
        """
        return 4 * self._node_count

    def leaf_resolution(self) -> float:
        return self.size / (2**self.max_depth)


def _octants(box: AABB) -> List[AABB]:
    """The 2^dim equal subdivisions of ``box``."""
    center = box.center
    out = []
    dim = box.dim
    for i in range(2**dim):
        lo = box.lo.copy()
        hi = box.hi.copy()
        for d in range(dim):
            if (i >> d) & 1:
                lo[d] = center[d]
            else:
                hi[d] = center[d]
        out.append(AABB(lo, hi))
    return out


def make_octree_checker(robot, environment, motion_resolution: float, max_depth: int = 6):
    """Collision checker over a :class:`CollisionOctree` (§VI baseline).

    Conservative like the occupancy grid, with memory controlled by depth
    instead of a dense cell array.  Defined as a factory to keep the
    ``spatial`` package import-independent from ``core``.
    """
    from repro.core.collision import CollisionChecker

    class OctreeChecker(CollisionChecker):
        def __init__(self):
            super().__init__(robot, environment, motion_resolution)
            self.octree = CollisionOctree(
                environment.obstacles,
                environment.size,
                environment.workspace_dim,
                max_depth=max_depth,
            )

        def _config_scalar(self, config: np.ndarray, counter=None) -> bool:
            for body in self.robot.body_obbs(config):
                if self.octree.query_obb(body, counter=counter):
                    return True
            return False

    return OctreeChecker()
