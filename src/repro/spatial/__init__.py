"""Spatial index substrate for MOPED.

* :mod:`repro.spatial.rtree` — static R-tree over obstacle AABBs, bulk-loaded
  with the sort-tile-recursive (STR) algorithm; the first-stage collision
  filter of Section III-A.
* :mod:`repro.spatial.simbr` — the paper's steering-informed
  minimal-bounding-rectangle tree (SI-MBR-Tree) used for neighbor search over
  the EXP-tree nodes, with both conventional minimum-area-enlargement
  insertion and the O(1) steering-informed insertion of Section III-C.
* :mod:`repro.spatial.kdtree` — incremental KD-tree baseline (Fig 19 right).
* :mod:`repro.spatial.brute` — brute-force scan baseline (vanilla RRT\\*).
"""

from repro.spatial.brute import BruteForceIndex
from repro.spatial.octree import CollisionOctree, make_octree_checker
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree
from repro.spatial.simbr import SIMBRTree

__all__ = [
    "BruteForceIndex",
    "CollisionOctree",
    "KDTree",
    "RTree",
    "SIMBRTree",
    "make_octree_checker",
]
