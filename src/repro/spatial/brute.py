"""Brute-force nearest-neighbor index: the vanilla RRT\\* baseline.

The original RRT\\* scans every node in the exploration tree for both the
nearest-neighbor query and the neighborhood query, which is why "the search
cost in the later growing stage will become very significant" (Section II-C).
A growable numpy array keeps the Python-side scan fast while the counter
records one ``dist`` operation per stored point per query — the cost model
the hardware baselines consume.
"""

from __future__ import annotations

from typing import Hashable, List

import numpy as np


class BruteForceIndex:
    """Flat array of points scanned linearly per query."""

    def __init__(self, dim: int, initial_capacity: int = 1024):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self._points = np.empty((initial_capacity, dim), dtype=float)
        self._keys: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._keys)

    def insert(self, key: Hashable, point: np.ndarray, counter=None) -> None:
        """Append a point (amortised O(1); no search structure to maintain)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {point.shape}")
        n = len(self._keys)
        if n == self._points.shape[0]:
            grown = np.empty((2 * n, self.dim), dtype=float)
            grown[:n] = self._points[:n]
            self._points = grown
        self._points[n] = point
        self._keys.append(key)

    def nearest(self, query: np.ndarray, counter=None, exclude=None):
        """Linear-scan nearest neighbor; ``(key, point, distance)`` or None."""
        n = len(self._keys)
        if n == 0:
            return None
        query = np.asarray(query, dtype=float)
        if counter is not None:
            counter.record("dist", dim=self.dim, n=n)
        diffs = self._points[:n] - query
        d_sq = np.einsum("nd,nd->n", diffs, diffs)
        if exclude:
            for i, key in enumerate(self._keys):
                if key in exclude:
                    d_sq[i] = np.inf
        idx = int(np.argmin(d_sq))
        if not np.isfinite(d_sq[idx]):
            return None
        return self._keys[idx], self._points[idx].copy(), float(np.sqrt(d_sq[idx]))

    def neighbors_within(self, query: np.ndarray, radius: float, counter=None):
        """Linear-scan range query; list of (key, point, distance) by distance."""
        n = len(self._keys)
        if n == 0:
            return []
        query = np.asarray(query, dtype=float)
        if counter is not None:
            counter.record("dist", dim=self.dim, n=n)
        diffs = self._points[:n] - query
        d_sq = np.einsum("nd,nd->n", diffs, diffs)
        hits = np.flatnonzero(d_sq <= radius * radius)
        out = [
            (self._keys[i], self._points[i].copy(), float(np.sqrt(d_sq[i]))) for i in hits
        ]
        out.sort(key=lambda item: item[2])
        return out

    def items(self):
        """All (key, point) pairs."""
        n = len(self._keys)
        return [(self._keys[i], self._points[i].copy()) for i in range(n)]
