"""Static R-tree over obstacle bounding boxes, bulk-loaded with STR.

This is the data structure behind MOPED's first-stage collision filter
(Section III-A).  Obstacles are known before planning begins, so the tree is
built *offline* with the sort-tile-recursive (STR) bulk-loading algorithm
(Leutenegger et al., ICDE 1997; ref [48] of the paper); construction cost
does not count toward planning-time operation counts.

During planning, :meth:`RTree.query_obb` walks the tree from the root: each
visited node performs one cheap AABB-OBB SAT check between the node's MBR and
the robot's OBB.  A clear check prunes the whole subtree ("the corresponding
collision checks ... are unnecessary and can be skipped"); an intersecting
leaf yields its obstacle index for the accurate second-stage OBB-OBB check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.aabb import AABB, aabb_union
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb


@dataclass(eq=False)
class _RNode:
    """Internal R-tree node: an MBR plus children or leaf entry indices."""

    mbr: AABB
    children: List["_RNode"] = field(default_factory=list)
    entries: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTree:
    """Static R-tree over a list of AABBs, bulk-loaded with STR.

    Args:
        boxes: one AABB per obstacle; entry *i* of every query result refers
            back to index *i* of this sequence.
        leaf_capacity: maximum entries per leaf / children per node.
    """

    def __init__(self, boxes: Sequence[AABB], leaf_capacity: int = 8):
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be >= 2")
        self._boxes = list(boxes)
        self._capacity = leaf_capacity
        self._root: Optional[_RNode] = self._bulk_load() if self._boxes else None

    # ------------------------------------------------------------------ build

    def _bulk_load(self) -> _RNode:
        """Sort-tile-recursive packing of all entries into a balanced tree."""
        indices = list(range(len(self._boxes)))
        leaves = [
            _RNode(mbr=aabb_union([self._boxes[i] for i in chunk]), entries=list(chunk))
            for chunk in self._str_tiles(indices)
        ]
        level = leaves
        while len(level) > 1:
            level = [
                _RNode(mbr=aabb_union([child.mbr for child in group]), children=list(group))
                for group in self._str_tiles_nodes(level)
            ]
        return level[0]

    def _str_tiles(self, indices: List[int]) -> List[List[int]]:
        """Group entry indices into leaf-sized tiles via STR."""
        centers = np.array([self._boxes[i].center for i in indices])
        groups = self._str_recursive(np.asarray(indices), centers, axis=0)
        return groups

    def _str_tiles_nodes(self, nodes: List[_RNode]) -> List[List[_RNode]]:
        """Group nodes one level up using the same STR tiling on MBR centres."""
        centers = np.array([n.mbr.center for n in nodes])
        idx_groups = self._str_recursive(np.arange(len(nodes)), centers, axis=0)
        return [[nodes[i] for i in group] for group in idx_groups]

    def _str_recursive(self, ids: np.ndarray, centers: np.ndarray, axis: int) -> List[List[int]]:
        """Recursively sort-and-slice along successive axes (the STR tiling)."""
        n = len(ids)
        if n <= self._capacity:
            return [list(ids)]
        dim = centers.shape[1]
        order = np.argsort(centers[:, axis], kind="stable")
        ids, centers = ids[order], centers[order]
        n_tiles = math.ceil(n / self._capacity)
        # Number of slabs along this axis: ceil(n_tiles ** (1/remaining_axes)).
        remaining = dim - axis
        slabs = max(1, math.ceil(n_tiles ** (1.0 / remaining)))
        slab_size = math.ceil(n / slabs)
        groups: List[List[int]] = []
        for start in range(0, n, slab_size):
            sl = slice(start, min(start + slab_size, n))
            if axis + 1 < dim:
                groups.extend(self._str_recursive(ids[sl], centers[sl], axis + 1))
            else:
                chunk_ids = ids[sl]
                for c in range(0, len(chunk_ids), self._capacity):
                    groups.append(list(chunk_ids[c : c + self._capacity]))
        return groups

    # ------------------------------------------------------------------ query

    def query_obb(self, obb: OBB, counter=None, prefilter_aabb: Optional[AABB] = None) -> List[int]:
        """Indices of obstacles whose AABB intersects the robot ``obb``.

        Every SAT check performed during the traversal is recorded on
        ``counter`` (any object with ``record(kind, dim=...)``), since these
        are exactly the first-stage checks the hardware executes.

        Args:
            prefilter_aabb: the robot ``obb``'s own AABB, when the caller has
                already derived it.  Each node is then screened with the
                6-MAC AABB-AABB interval test first and only overlapping
                nodes pay the AABB-OBB SAT.  The filter is conservative
                (``AABB(robot) ⊇ robot``), so results are identical.
        """
        if self._root is None:
            return []
        dim = self._root.mbr.dim
        hits: List[int] = []
        stack = [self._root]

        def intersects(box: AABB) -> bool:
            if prefilter_aabb is not None:
                if counter is not None:
                    counter.record("sat_aabb_aabb", dim=dim)
                if not box.intersects(prefilter_aabb):
                    return False
            if counter is not None:
                counter.record("sat_aabb_obb", dim=dim)
            return aabb_intersects_obb(box, obb)

        while stack:
            node = stack.pop()
            if not intersects(node.mbr):
                continue
            if node.is_leaf:
                for idx in node.entries:
                    if intersects(self._boxes[idx]):
                        hits.append(idx)
            else:
                stack.extend(node.children)
        return hits

    def query_aabb(self, box: AABB, counter=None) -> List[int]:
        """Indices of obstacles whose AABB intersects the query ``box``."""
        if self._root is None:
            return []
        dim = self._root.mbr.dim
        hits: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if counter is not None:
                counter.record("sat_aabb_aabb", dim=dim)
            if not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                for idx in node.entries:
                    if counter is not None:
                        counter.record("sat_aabb_aabb", dim=dim)
                    if self._boxes[idx].intersects(box):
                        hits.append(idx)
            else:
                stack.extend(node.children)
        return hits

    # ------------------------------------------------------------------ export

    def export_nodes(self):
        """Flatten the tree for the batch kernel layer (:mod:`repro.kernels`).

        Returns ``(lo_rows, hi_rows, children, entries)`` where rows
        ``0..N-1`` are the node MBR corners (root first, then breadth-first)
        followed by one row per obstacle entry box, ``children[n]`` lists a
        node's child ids, and ``entries[n]`` lists a leaf's obstacle
        indices.  The batch checker evaluates SAT against every row in one
        stacked pass and replays the traversal over the resulting booleans.
        """
        nodes: List[_RNode] = [n for level in self.iter_levels() for n in level]
        ids = {id(node): i for i, node in enumerate(nodes)}
        lo_rows = [node.mbr.lo for node in nodes]
        hi_rows = [node.mbr.hi for node in nodes]
        children = [[ids[id(child)] for child in node.children] for node in nodes]
        entries = [list(node.entries) for node in nodes]
        lo_rows.extend(box.lo for box in self._boxes)
        hi_rows.extend(box.hi for box in self._boxes)
        return lo_rows, hi_rows, children, entries

    # ------------------------------------------------------------- diagnostics

    def __len__(self) -> int:
        return len(self._boxes)

    @property
    def height(self) -> int:
        """Tree height (1 for a single leaf root, 0 when empty)."""
        h, node = 0, self._root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h

    def iter_levels(self) -> Iterator[List[_RNode]]:
        """Yield nodes level by level (root first); used by tests."""
        if self._root is None:
            return
        level = [self._root]
        while level:
            yield level
            level = [child for node in level for child in node.children]

    def validate(self) -> None:
        """Raise AssertionError when any structural invariant is broken.

        Invariants: every node MBR contains its children's MBRs / entry boxes,
        all leaves are at the same depth, and no node exceeds capacity.
        """
        if self._root is None:
            return
        depths = set()

        def walk(node: _RNode, depth: int) -> None:
            if node.is_leaf:
                depths.add(depth)
                assert len(node.entries) <= self._capacity, "leaf over capacity"
                for idx in node.entries:
                    assert node.mbr.contains_aabb(self._boxes[idx]), "leaf MBR too small"
            else:
                assert len(node.children) <= self._capacity, "node over capacity"
                for child in node.children:
                    assert node.mbr.contains_aabb(child.mbr), "node MBR too small"
                    walk(child, depth + 1)

        walk(self._root, 0)
        assert len(depths) == 1, f"leaves at different depths: {depths}"
