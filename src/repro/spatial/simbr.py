"""SI-MBR-Tree: steering-informed minimal-bounding-rectangle tree.

The paper's data structure for neighbor search over the RRT\\* exploration
tree (Sections III-B and III-C).  Each leaf entry is one EXP-tree node (a
configuration-space point); each internal node stores the minimum bounding
rectangle (MBR) of its subtree.  Three capabilities matter to MOPED:

* **Exact nearest-neighbor search** with MINDIST branch-and-bound pruning:
  a subtree whose MBR MINDIST exceeds the best distance found so far cannot
  contain a closer leaf, so it is skipped wholesale (Section III-B).
* **Steering-informed O(1) insertion** (:meth:`SIMBRTree.insert` with
  ``sibling_of``): because ``x_new`` is steered a short step from
  ``x_nearest``, it is placed directly into ``x_nearest``'s leaf node instead
  of descending the tree minimising area enlargement level by level
  (Section III-C, Fig 9).
* **Approximated neighborhoods** (:meth:`SIMBRTree.leaf_siblings`): the
  entries sharing ``x_nearest``'s leaf are returned as the approximate
  neighborhood of ``x_new``, eliminating the second neighbor search of each
  sampling round (Section III-B, Fig 7).

The conventional insertion path (minimum area enlargement per level,
Guttman 1984) is also implemented so the Fig 10 ablation can compare both.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.lru import LRUMap
from repro.geometry.aabb import AABB
from repro.obs import bump


def _mindist_sq(query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared MINDIST to the rectangle ``[lo, hi]`` without an AABB wrapper.

    Same clamp arithmetic as :func:`repro.geometry.mindist.
    mindist_sq_point_to_rect`; searches call this on the node's ``lo``/``hi``
    arrays directly so the hot loop skips AABB construction and validation.
    """
    gap = np.maximum(np.maximum(lo - query, query - hi), 0.0)
    return float(gap @ gap)


@dataclass(eq=False)
class _Node:
    """SI-MBR-Tree node; a leaf holds ``entries``, an internal node ``children``."""

    lo: np.ndarray
    hi: np.ndarray
    parent: Optional["_Node"] = None
    children: List["_Node"] = field(default_factory=list)
    entries: List[Tuple[Hashable, np.ndarray]] = field(default_factory=list)
    uid: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def mbr(self) -> AABB:
        return AABB(self.lo.copy(), self.hi.copy())


class SIMBRTree:
    """Dynamic MBR tree over configuration-space points.

    Args:
        dim: configuration-space dimensionality (the robot DoF).
        capacity: maximum entries per leaf and children per internal node.
            The paper's approximated neighborhood is the leaf population, so
            ``capacity`` doubles as the neighborhood size bound.
        neighborhood_cache: capacity of the reused-neighborhood cache (the
            Section IV-C software cache level over ``leaf_siblings``).  A
            leaf-scope sibling list is keyed by ``(leaf uid, entry count)``,
            so any structural change to the leaf — appends and splits alike
            — produces a fresh key and a miss; stale lists are never served.
            0 (default) disables.
    """

    def __init__(self, dim: int, capacity: int = 8, neighborhood_cache: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if neighborhood_cache < 0:
            raise ValueError("neighborhood_cache must be >= 0")
        self.dim = dim
        self.capacity = capacity
        self.neighborhood_cache = (
            LRUMap(neighborhood_cache) if neighborhood_cache > 0 else None
        )
        self._root: Optional[_Node] = None
        self._leaf_of: Dict[Hashable, _Node] = {}
        self._points: Dict[Hashable, np.ndarray] = {}
        self._tiebreak = itertools.count()
        self._node_ids = itertools.count()
        #: Optional callable ``(node_id, depth)`` invoked for every tree node
        #: a search visits; the hardware cache model subscribes here to replay
        #: real access traces (Section IV-C's temporal-locality argument).
        self.access_hook = None

    # ----------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._points

    def point(self, key: Hashable) -> np.ndarray:
        """Stored point for ``key``."""
        return self._points[key]

    def items(self) -> Iterator[Tuple[Hashable, np.ndarray]]:
        """Iterate over all (key, point) entries."""
        return iter(self._points.items())

    @property
    def height(self) -> int:
        """Tree height (1 for a leaf-only root, 0 when empty)."""
        h, node = 0, self._root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h

    # ---------------------------------------------------------------- insert

    def insert(
        self,
        key: Hashable,
        point: np.ndarray,
        sibling_of: Optional[Hashable] = None,
        counter=None,
    ) -> None:
        """Insert ``point`` under ``key``.

        With ``sibling_of`` set (steering-informed, O(1) path): the point is
        placed directly in the leaf containing ``sibling_of``.  Without it,
        the conventional Guttman descent selects, at every level, the child
        whose MBR needs the minimum area enlargement — each candidate
        evaluation is recorded as an ``enlargement`` operation on ``counter``.
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {point.shape}")
        if key in self._points:
            raise KeyError(f"duplicate key {key!r}")

        if self._root is None:
            self._root = _Node(lo=point.copy(), hi=point.copy(), uid=next(self._node_ids))
            self._root.entries.append((key, point))
            self._leaf_of[key] = self._root
            self._points[key] = point
            return

        if sibling_of is not None:
            if sibling_of not in self._leaf_of:
                raise KeyError(f"sibling key {sibling_of!r} not in tree")
            leaf = self._leaf_of[sibling_of]
            if counter is not None:
                counter.record("insert_direct", dim=self.dim)
        else:
            leaf = self._choose_leaf(point, counter)

        leaf.entries.append((key, point))
        self._leaf_of[key] = leaf
        self._points[key] = point
        self._extend_upward(leaf, point, counter)
        if len(leaf.entries) > self.capacity:
            self._split(leaf, counter)

    def _choose_leaf(self, point: np.ndarray, counter) -> _Node:
        """Guttman descent: child of minimum area enlargement per level."""
        node = self._root
        assert node is not None
        while not node.is_leaf:
            best_child, best_key = None, None
            for child in node.children:
                if counter is not None:
                    counter.record("enlargement", dim=self.dim)
                enlargement = self._enlargement(child, point)
                volume = float(np.prod(child.hi - child.lo))
                cand = (enlargement, volume)
                if best_key is None or cand < best_key:
                    best_key, best_child = cand, child
            node = best_child
        return node

    @staticmethod
    def _enlargement(node: _Node, point: np.ndarray) -> float:
        new_lo = np.minimum(node.lo, point)
        new_hi = np.maximum(node.hi, point)
        return float(np.prod(new_hi - new_lo) - np.prod(node.hi - node.lo))

    def _extend_upward(self, node: _Node, point: np.ndarray, counter) -> None:
        """Grow ancestor MBRs to cover ``point``."""
        current: Optional[_Node] = node
        while current is not None:
            if np.all(point >= current.lo) and np.all(point <= current.hi):
                break
            current.lo = np.minimum(current.lo, point)
            current.hi = np.maximum(current.hi, point)
            if counter is not None:
                counter.record("mbr_update", dim=self.dim)
            current = current.parent

    def _split(self, node: _Node, counter) -> None:
        """Split an overfull node along its axis of maximum spread.

        Entries (or child MBR centres) are sorted along the widest axis and
        divided at the median, which keeps both halves spatially compact —
        the property the approximated neighborhood relies on.
        """
        if counter is not None:
            counter.record("split", dim=self.dim)
        if node.is_leaf:
            points = np.array([p for _, p in node.entries])
            axis = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
            order = np.argsort(points[:, axis], kind="stable")
            half = len(order) // 2
            left_items = [node.entries[i] for i in order[:half]]
            right_items = [node.entries[i] for i in order[half:]]
            left = self._make_leaf(left_items)
            right = self._make_leaf(right_items)
        else:
            centers = np.array([(c.lo + c.hi) / 2.0 for c in node.children])
            axis = int(np.argmax(centers.max(axis=0) - centers.min(axis=0)))
            order = np.argsort(centers[:, axis], kind="stable")
            half = len(order) // 2
            left = self._make_internal([node.children[i] for i in order[:half]])
            right = self._make_internal([node.children[i] for i in order[half:]])

        parent = node.parent
        if parent is None:
            new_root = _Node(
                lo=np.minimum(left.lo, right.lo),
                hi=np.maximum(left.hi, right.hi),
                children=[left, right],
                uid=next(self._node_ids),
            )
            left.parent = right.parent = new_root
            self._root = new_root
        else:
            parent.children.remove(node)
            parent.children.extend([left, right])
            left.parent = right.parent = parent
            if len(parent.children) > self.capacity:
                self._split(parent, counter)

    def _make_leaf(self, items: List[Tuple[Hashable, np.ndarray]]) -> _Node:
        points = np.array([p for _, p in items])
        leaf = _Node(
            lo=points.min(axis=0),
            hi=points.max(axis=0),
            entries=list(items),
            uid=next(self._node_ids),
        )
        for key, _ in items:
            self._leaf_of[key] = leaf
        return leaf

    def _make_internal(self, children: List[_Node]) -> _Node:
        lo = np.minimum.reduce([c.lo for c in children])
        hi = np.maximum.reduce([c.hi for c in children])
        node = _Node(lo=lo, hi=hi, children=list(children), uid=next(self._node_ids))
        for child in children:
            child.parent = node
        return node

    # ---------------------------------------------------------------- queries

    def nearest(self, query: np.ndarray, counter=None, exclude=None):
        """Exact nearest neighbor of ``query``.

        Best-first traversal ordered by MINDIST; a node is expanded only if
        its MINDIST is below the best distance found so far, exactly the
        skip rule of Section III-B.  Returns ``(key, point, distance)`` or
        ``None`` on an empty tree.

        Args:
            exclude: optional set of keys invisible to this search — used by
                the speculative-execution model, where the node inserted by
                the in-flight sampling round is not yet visible.
        """
        query = np.asarray(query, dtype=float)
        if self._root is None:
            return None
        exclude = exclude or frozenset()
        best_key, best_point, best_sq = None, None, float("inf")
        heap = [(0.0, next(self._tiebreak), self._root, 0)]
        while heap:
            bound_sq, _, node, depth = heapq.heappop(heap)
            if bound_sq >= best_sq:
                break  # all remaining nodes are at least this far
            if self.access_hook is not None:
                self.access_hook(node.uid, depth)
            if node.is_leaf:
                if counter is not None:
                    visited = (
                        len(node.entries)
                        if not exclude
                        else sum(key not in exclude for key, _ in node.entries)
                    )
                    if visited:
                        counter.record("dist", dim=self.dim, n=visited)
                for key, point in node.entries:
                    if key in exclude:
                        continue
                    d_sq = float(np.sum((point - query) ** 2))
                    if d_sq < best_sq:
                        best_key, best_point, best_sq = key, point, d_sq
            else:
                if counter is not None:
                    counter.record("mindist", dim=self.dim, n=len(node.children))
                for child in node.children:
                    child_bound = _mindist_sq(query, child.lo, child.hi)
                    if child_bound < best_sq:
                        heapq.heappush(
                            heap, (child_bound, next(self._tiebreak), child, depth + 1)
                        )
        if best_key is None:
            return None
        return best_key, best_point, float(np.sqrt(best_sq))

    def neighbors_within(self, query: np.ndarray, radius: float, counter=None):
        """All entries within ``radius`` of ``query`` (exact range search).

        Returns a list of ``(key, point, distance)`` sorted by distance.
        """
        query = np.asarray(query, dtype=float)
        if self._root is None:
            return []
        radius_sq = radius * radius
        out = []
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if self.access_hook is not None:
                self.access_hook(node.uid, depth)
            if node.is_leaf:
                if counter is not None and node.entries:
                    counter.record("dist", dim=self.dim, n=len(node.entries))
                for key, point in node.entries:
                    d_sq = float(np.sum((point - query) ** 2))
                    if d_sq <= radius_sq:
                        out.append((key, point, float(np.sqrt(d_sq))))
            else:
                if counter is not None:
                    counter.record("mindist", dim=self.dim, n=len(node.children))
                for child in node.children:
                    if _mindist_sq(query, child.lo, child.hi) <= radius_sq:
                        stack.append((child, depth + 1))
        out.sort(key=lambda item: item[2])
        return out

    def leaf_siblings(
        self,
        key: Hashable,
        counter=None,
        scope: str = "leaf",
        query: Optional[np.ndarray] = None,
        radius: Optional[float] = None,
    ):
        """Entries grouped with ``key``: the approximated neighborhood.

        This is the Section III-B approximation: the tree's grouping already
        encodes geometric proximity, so the population of the non-leaf node
        containing ``x_nearest`` stands in for the neighborhood of ``x_new``
        with no search at all.  Only a buffer read is recorded — the node's
        entries are exactly what the engine-level neighborhood cache holds.

        Args:
            scope: ``"leaf"`` returns the entries of ``key``'s leaf node;
                ``"parent"`` widens to every leaf under the leaf's parent
                (the node-C grouping of Fig 7), which tracks the true
                neighborhood more closely in low-dimensional spaces where
                neighborhoods span several leaves.
            query / radius: with parent scope, sibling leaves whose MBR
                MINDIST to ``query`` exceeds ``radius`` are skipped (one
                recorded ``mindist`` each) — the same pruning rule the full
                search uses, applied to the stored grouping only.
        """
        if key not in self._leaf_of:
            raise KeyError(f"key {key!r} not in tree")
        if scope not in ("leaf", "parent"):
            raise ValueError(f"scope must be 'leaf' or 'parent', got {scope!r}")
        if counter is not None:
            counter.record("buffer_read", dim=self.dim)
        leaf = self._leaf_of[key]
        if scope == "leaf" or leaf.parent is None:
            cache = self.neighborhood_cache
            if cache is not None:
                # Splits mint fresh uids and entry lists are append-only, so
                # (uid, entry count) uniquely identifies a leaf state.
                cache_key = (leaf.uid, len(leaf.entries))
                cached = cache.get(cache_key)
                if cached is not None:
                    bump("repro_cache_events_total", cache="neighborhood",
                         event="hit",
                         help="Software cache events by cache and outcome")
                    return list(cached)
                siblings = [(k, p) for k, p in leaf.entries]
                evictions_before = cache.evictions
                cache.put(cache_key, tuple(siblings))
                bump("repro_cache_events_total", cache="neighborhood",
                     event="miss",
                     help="Software cache events by cache and outcome")
                if cache.evictions > evictions_before:
                    bump("repro_cache_events_total", cache="neighborhood",
                         event="evict",
                         help="Software cache events by cache and outcome")
                return siblings
            return [(k, p) for k, p in leaf.entries]
        out = []
        radius_sq = radius * radius if radius is not None else None
        for sibling in leaf.parent.children:
            if not sibling.is_leaf:
                continue
            if sibling is not leaf and radius_sq is not None and query is not None:
                if counter is not None:
                    counter.record("mindist", dim=self.dim)
                if _mindist_sq(query, sibling.lo, sibling.hi) > radius_sq:
                    continue
            out.extend(sibling.entries)
        return out

    # ------------------------------------------------------------ diagnostics

    def total_overlap(self) -> float:
        """Sum of pairwise sibling MBR overlap volumes across internal nodes.

        Lower overlap means better-separated subtrees and fewer branches
        visited per search; the metric used to argue the steering-informed
        insertion yields "smaller spatial overlap" (Section III-C).
        """
        total = 0.0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for i, a in enumerate(node.children):
                for b in node.children[i + 1 :]:
                    lo = np.maximum(a.lo, b.lo)
                    hi = np.minimum(a.hi, b.hi)
                    gaps = hi - lo
                    if np.all(gaps > 0):
                        total += float(np.prod(gaps))
            stack.extend(node.children)
        return total

    def validate(self) -> None:
        """Raise AssertionError when a structural invariant is broken."""
        if self._root is None:
            assert not self._points, "points recorded but tree empty"
            return
        seen = set()
        depths = set()

        def walk(node: _Node, depth: int) -> None:
            if node.is_leaf:
                depths.add(depth)
                assert node.entries, "empty leaf"
                assert len(node.entries) <= self.capacity, "leaf over capacity"
                for key, point in node.entries:
                    assert key not in seen, f"duplicate key {key!r}"
                    seen.add(key)
                    assert np.all(point >= node.lo - 1e-9), "point below leaf MBR"
                    assert np.all(point <= node.hi + 1e-9), "point above leaf MBR"
                    assert self._leaf_of[key] is node, "leaf map out of date"
            else:
                assert len(node.children) >= 2, "internal node with < 2 children"
                assert len(node.children) <= self.capacity, "node over capacity"
                for child in node.children:
                    assert child.parent is node, "broken parent pointer"
                    assert np.all(child.lo >= node.lo - 1e-9), "child MBR outside parent"
                    assert np.all(child.hi <= node.hi + 1e-9), "child MBR outside parent"
                    walk(child, depth + 1)

        walk(self._root, 0)
        assert seen == set(self._points), "leaf map and point set disagree"
        assert len(depths) == 1, f"leaves at different depths: {depths}"
