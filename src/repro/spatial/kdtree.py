"""Incremental KD-tree baseline for nearest-neighbor search.

The Fig 19 (right) comparison point.  The tree supports incremental point
insertion (axis cycling by depth) because RRT\\* acquires samples
sequentially; as the paper notes (Section III-C), KD-trees degrade in this
regime — incremental insertion produces unbalanced trees whose search visits
many more branches, and the usual mitigation (periodic full rebuilds) costs
extra.  Both behaviours are measurable here: searches report their operation
counts through the same counter protocol as :class:`~repro.spatial.simbr.SIMBRTree`,
and :meth:`KDTree.rebuild` re-balances at a recorded cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np


@dataclass
class _KDNode:
    key: Hashable
    point: np.ndarray
    axis: int
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None


class KDTree:
    """KD-tree over configuration-space points with incremental insertion."""

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self._root: Optional[_KDNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ---------------------------------------------------------------- insert

    def insert(self, key: Hashable, point: np.ndarray, counter=None) -> None:
        """Insert a point, descending by per-axis comparison.

        Each level's comparison is recorded as a ``plane_compare`` op.
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {point.shape}")
        if self._root is None:
            self._root = _KDNode(key, point, axis=0)
            self._size = 1
            return
        node = self._root
        while True:
            if counter is not None:
                counter.record("plane_compare", dim=self.dim)
            axis = node.axis
            next_axis = (axis + 1) % self.dim
            if point[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _KDNode(key, point, axis=next_axis)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _KDNode(key, point, axis=next_axis)
                    break
                node = node.right
        self._size += 1

    def rebuild(self, counter=None) -> None:
        """Rebuild a balanced tree from scratch (median splitting).

        The cost — one ``rebuild_item`` op per stored point per level, i.e.
        O(n log n) — is recorded so benchmarks can charge the KD baseline
        for the periodic rebuilds dynamic data demands.
        """
        items = list(self.items())
        if counter is not None and items:
            levels = int(np.ceil(np.log2(len(items) + 1)))
            counter.record("rebuild_item", dim=self.dim, n=len(items) * levels)
        self._root = self._build_balanced(items, depth=0)

    def _build_balanced(
        self, items: List[Tuple[Hashable, np.ndarray]], depth: int
    ) -> Optional[_KDNode]:
        if not items:
            return None
        axis = depth % self.dim
        items.sort(key=lambda kv: kv[1][axis])
        mid = len(items) // 2
        key, point = items[mid]
        node = _KDNode(key, point, axis=axis)
        node.left = self._build_balanced(items[:mid], depth + 1)
        node.right = self._build_balanced(items[mid + 1 :], depth + 1)
        return node

    # ---------------------------------------------------------------- queries

    def nearest(self, query: np.ndarray, counter=None, exclude=None):
        """Exact nearest neighbor; returns ``(key, point, distance)`` or None."""
        query = np.asarray(query, dtype=float)
        if self._root is None:
            return None
        exclude = exclude or frozenset()
        best: List = [None, None, float("inf")]

        def visit(node: Optional[_KDNode]) -> None:
            if node is None:
                return
            if node.key not in exclude:
                if counter is not None:
                    counter.record("dist", dim=self.dim)
                d_sq = float(np.sum((node.point - query) ** 2))
                if d_sq < best[2]:
                    best[0], best[1], best[2] = node.key, node.point, d_sq
            axis = node.axis
            if counter is not None:
                counter.record("plane_compare", dim=self.dim)
            diff = query[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            # The far side can only help if the splitting plane is closer
            # than the current best ("visit substantially more branches" is
            # exactly this test failing to prune in high dimension).
            if diff * diff < best[2]:
                visit(far)

        visit(self._root)
        if best[0] is None:
            return None
        return best[0], best[1], float(np.sqrt(best[2]))

    def neighbors_within(self, query: np.ndarray, radius: float, counter=None):
        """All entries within ``radius``; list of (key, point, distance)."""
        query = np.asarray(query, dtype=float)
        if self._root is None:
            return []
        radius_sq = radius * radius
        out = []

        def visit(node: Optional[_KDNode]) -> None:
            if node is None:
                return
            if counter is not None:
                counter.record("dist", dim=self.dim)
            d_sq = float(np.sum((node.point - query) ** 2))
            if d_sq <= radius_sq:
                out.append((node.key, node.point, float(np.sqrt(d_sq))))
            if counter is not None:
                counter.record("plane_compare", dim=self.dim)
            diff = query[node.axis] - node.point[node.axis]
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if diff * diff <= radius_sq:
                visit(far)

        visit(self._root)
        out.sort(key=lambda item: item[2])
        return out

    # ------------------------------------------------------------ diagnostics

    def items(self) -> List[Tuple[Hashable, np.ndarray]]:
        """All (key, point) pairs in the tree."""
        out: List[Tuple[Hashable, np.ndarray]] = []
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            out.append((node.key, node.point))
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return out

    @property
    def depth(self) -> int:
        """Maximum depth (a balance diagnostic; log2(n) when balanced)."""

        def walk(node: Optional[_KDNode]) -> int:
            if node is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
