"""Regenerate every paper figure into ``results/`` from one command.

Usage::

    python -m repro.analysis.run_all                 # default scale
    python -m repro.analysis.run_all --samples 2000 --tasks 5
    python -m repro.analysis.run_all --only fig06 fig16

The same runners back the ``benchmarks/`` targets; this entry point exists
for regenerating all tables without pytest (e.g. on a bigger budget).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis.experiments import (
    ExperimentScale,
    run_moped_breakdown,
    run_cache_stats,
    run_fig03_breakdown,
    run_fig06_two_stage,
    run_fig08_approx_ns,
    run_fig10_insertion,
    run_fig14_algorithmic,
    run_fig15_hardware,
    run_fig16_breakdown,
    run_fig17_snr,
    run_fig18_aabb_speedup,
    run_fig18_bounding_box,
    run_fig19_kd_comparison,
    run_fig19_scaling,
    run_snr_buffer_stats,
)
from repro.analysis.tables import format_table

RUNNERS = {
    "fig03": run_fig03_breakdown,
    "fig05": run_fig18_bounding_box,
    "fig06": run_fig06_two_stage,
    "fig08": run_fig08_approx_ns,
    "fig10": run_fig10_insertion,
    "fig14": run_fig14_algorithmic,
    "fig15": run_fig15_hardware,
    "fig16": run_fig16_breakdown,
    "fig17": run_fig17_snr,
    "fig18": run_fig18_aabb_speedup,
    "fig19L": run_fig19_scaling,
    "fig19R": run_fig19_kd_comparison,
    "snr_buffers": run_snr_buffer_stats,
    "caching": run_cache_stats,
    "moped_breakdown": run_moped_breakdown,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=None,
                        help="sampling budget per run (paper: 5000)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="tasks per configuration (paper: 50)")
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"subset of figures to run: {sorted(RUNNERS)}")
    parser.add_argument("--out", default="results",
                        help="output directory for the tables")
    args = parser.parse_args(argv)

    scale_kwargs = {}
    if args.samples is not None:
        scale_kwargs["samples"] = args.samples
    if args.tasks is not None:
        scale_kwargs["tasks"] = args.tasks
    scale = ExperimentScale(**scale_kwargs) if scale_kwargs else ExperimentScale.from_env()

    selected = args.only if args.only else sorted(RUNNERS)
    unknown = [name for name in selected if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown figures {unknown}; choose from {sorted(RUNNERS)}")

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    for name in selected:
        started = time.perf_counter()
        result = RUNNERS[name](scale)
        table = format_table(result.headers, result.rows, title=result.title)
        body = (
            f"{table}\n\npaper claim: {result.paper_claim}\n"
            + (f"notes: {result.notes}\n" if result.notes else "")
        )
        (out_dir / f"{result.figure}.txt").write_text(body)
        print(f"\n{body}\n[{name} done in "
              f"{time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
