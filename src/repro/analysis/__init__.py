"""Experiment runners and table formatting for the paper's figures.

Every figure/table of the MOPED evaluation (Section V) has a runner in
:mod:`repro.analysis.experiments` returning a structured result, and the
``benchmarks/`` directory contains one pytest-benchmark target per figure
that invokes the runner and prints a paper-style table.
"""

from repro.analysis.experiments import (
    ExperimentScale,
    run_fig03_breakdown,
    run_moped_breakdown,
    run_fig06_two_stage,
    run_fig08_approx_ns,
    run_fig10_insertion,
    run_fig14_algorithmic,
    run_fig15_hardware,
    run_fig16_breakdown,
    run_fig17_snr,
    run_fig18_aabb_speedup,
    run_fig18_bounding_box,
    run_fig19_scaling,
    run_fig19_kd_comparison,
    run_snr_buffer_stats,
    run_cache_stats,
)
from repro.analysis.compare import Comparison, compare_configs
from repro.analysis.render import render_environment
from repro.analysis.suite import SuiteStats, evaluate_suite
from repro.analysis.tables import format_table
from repro.analysis.tree_viz import TreeStats, render_tree, tree_stats

__all__ = [
    "ExperimentScale",
    "Comparison",
    "SuiteStats",
    "compare_configs",
    "evaluate_suite",
    "format_table",
    "render_environment",
    "render_tree",
    "tree_stats",
    "TreeStats",
    "run_cache_stats",
    "run_fig03_breakdown",
    "run_moped_breakdown",
    "run_fig06_two_stage",
    "run_fig08_approx_ns",
    "run_fig10_insertion",
    "run_fig14_algorithmic",
    "run_fig15_hardware",
    "run_fig16_breakdown",
    "run_fig17_snr",
    "run_fig18_aabb_speedup",
    "run_fig18_bounding_box",
    "run_fig19_scaling",
    "run_fig19_kd_comparison",
    "run_snr_buffer_stats",
]
