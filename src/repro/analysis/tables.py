"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [float_fmt.format(cell) if isinstance(cell, float) else str(cell) for cell in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
