"""Suite-level evaluation: the paper's 50-task protocol as a library call.

Section V evaluates every configuration over 50 random planning tasks and
reports aggregates.  :func:`evaluate_suite` runs a task suite through one
planner configuration and returns success rate, path-cost statistics, and
operation-count statistics — the building block behind Fig 14/15 as well as
a convenient user-facing API for comparing configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import PlannerConfig
from repro.core.metrics import PlanResult
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask
from repro.obs.stats import percentile


@dataclass(frozen=True)
class SuiteStats:
    """Aggregates over one suite of planning tasks."""

    num_tasks: int
    successes: int
    mean_path_cost: float
    median_path_cost: float
    mean_macs: float
    p95_macs: float
    mean_nodes: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.num_tasks if self.num_tasks else 0.0

    def row(self) -> List:
        return [
            self.num_tasks,
            self.successes,
            self.success_rate,
            self.mean_path_cost,
            self.mean_macs,
        ]


def evaluate_suite(
    tasks: List[PlanningTask],
    config: PlannerConfig,
    robot_name: Optional[str] = None,
) -> SuiteStats:
    """Plan every task with ``config`` and aggregate the outcomes.

    Args:
        tasks: planning tasks (typically from
            :func:`repro.workloads.task_suite`).
        config: planner configuration applied to every task.
        robot_name: overrides the tasks' robot (rarely needed).
    """
    if not tasks:
        raise ValueError("need at least one task")
    results: List[PlanResult] = []
    for task in tasks:
        robot = get_robot(robot_name or task.robot_name)
        results.append(RRTStarPlanner(robot, task, config).plan())
    costs = [r.path_cost for r in results if r.success]
    macs = [r.total_macs for r in results]
    nodes = [r.num_nodes for r in results]
    return SuiteStats(
        num_tasks=len(tasks),
        successes=sum(1 for r in results if r.success),
        mean_path_cost=float(np.mean(costs)) if costs else float("nan"),
        median_path_cost=float(np.median(costs)) if costs else float("nan"),
        mean_macs=float(np.mean(macs)),
        # Shared implementation (repro.obs.stats) so suite aggregates and
        # service telemetry report identical percentile semantics.
        p95_macs=float(percentile(macs, 95)),
        mean_nodes=float(np.mean(nodes)),
    )
