"""ASCII rendering of 2D workspaces, obstacles, and planned paths.

A dependency-free visual check for the 2D mobile workloads: obstacles are
rasterised as ``#``, the planned path as ``*``, start/goal as ``S``/``G``.
Used by the examples and handy when debugging environment generators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.world import Environment


def render_environment(
    environment: Environment,
    path: Optional[Sequence[np.ndarray]] = None,
    width: int = 60,
    height: int = 30,
) -> str:
    """Render a 2D environment (and optionally a path) as ASCII art.

    Args:
        environment: must be 2D.
        path: optional waypoint list; configurations may carry extra
            dimensions (e.g. heading) — only x/y are drawn.
        width / height: character-grid resolution.

    Raises ValueError for non-2D environments or degenerate grids.
    """
    if environment.workspace_dim != 2:
        raise ValueError("ASCII rendering supports 2D environments only")
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    size = environment.size
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_cell(x: float, y: float):
        col = int(np.clip(x / size * (width - 1), 0, width - 1))
        # Row 0 is the top of the drawing = the largest y.
        row = int(np.clip((1.0 - y / size) * (height - 1), 0, height - 1))
        return row, col

    # Rasterise obstacles by testing each cell centre against every OBB.
    xs = (np.arange(width) + 0.5) / width * size
    ys = (1.0 - (np.arange(height) + 0.5) / height) * size
    for obstacle in environment.obstacles:
        for row, y in enumerate(ys):
            for col, x in enumerate(xs):
                if obstacle.contains_point(np.array([x, y])):
                    grid[row][col] = "#"

    if path is not None and len(path) > 0:
        # Draw segments with dense interpolation so lines are continuous.
        for a, b in zip(path[:-1], path[1:]):
            a2, b2 = np.asarray(a)[:2], np.asarray(b)[:2]
            steps = max(2, int(np.linalg.norm(b2 - a2) / size * max(width, height) * 2))
            for t in np.linspace(0.0, 1.0, steps):
                row, col = to_cell(*(a2 + t * (b2 - a2)))
                if grid[row][col] == " ":
                    grid[row][col] = "*"
        srow, scol = to_cell(*np.asarray(path[0])[:2])
        grow_, gcol = to_cell(*np.asarray(path[-1])[:2])
        grid[srow][scol] = "S"
        grid[grow_][gcol] = "G"

    border = "+" + "-" * width + "+"
    lines = [border] + ["|" + "".join(row) + "|" for row in grid] + [border]
    return "\n".join(lines)
