"""Per-figure experiment runners for the Section V evaluation.

Each ``run_figNN_*`` function executes the workload behind one paper figure
and returns a :class:`FigureResult` (headers + rows + the paper's claim),
which the corresponding benchmark target formats and archives.

Scaling: the paper plans with 5 000 samples and 50 tasks per configuration;
a pure-Python reproduction scales that down through
:class:`ExperimentScale` (environment variables ``REPRO_SAMPLES`` /
``REPRO_TASKS`` override the defaults).  Trends, not absolute values, are
the reproduction target — see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PlannerConfig, baseline_config, moped_config
from repro.core.metrics import PlanResult
from repro.core.robots import RobotModel, get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask
from repro.hardware.baselines import asic_report, codacc_report, cpu_report
from repro.hardware.engine import MopedAccelerator
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import snr_latency_cycles
from repro.hardware.report import PerfReport
from repro.workloads.generator import random_task

ALL_ROBOTS = ("mobile2d", "viperx300", "drone3d", "rozum", "xarm7")


@dataclass(frozen=True)
class ExperimentScale:
    """How large to run the experiments.

    Attributes:
        samples: sampling budget per planning run (paper: 5 000).
        tasks: planning tasks per configuration (paper: 50).
        obstacle_counts: environment densities to sweep (paper: 8/16/32/48).
        robots: robot subset.
        seed: base RNG seed.
    """

    samples: int = 400
    tasks: int = 2
    obstacle_counts: Tuple[int, ...] = (8, 16, 32, 48)
    robots: Tuple[str, ...] = ALL_ROBOTS
    seed: int = 0

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Scale from ``REPRO_SAMPLES`` / ``REPRO_TASKS`` env vars."""
        kwargs = {}
        if "REPRO_SAMPLES" in os.environ:
            kwargs["samples"] = int(os.environ["REPRO_SAMPLES"])
        if "REPRO_TASKS" in os.environ:
            kwargs["tasks"] = int(os.environ["REPRO_TASKS"])
        return cls(**kwargs)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A tiny scale for unit tests."""
        return cls(samples=120, tasks=1, obstacle_counts=(8,), robots=("mobile2d",))


@dataclass
class FigureResult:
    """One figure's reproduced data."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List]
    paper_claim: str
    notes: str = ""

    def row_dicts(self) -> List[Dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]


def _plan(
    robot_name: str, task: PlanningTask, config: PlannerConfig
) -> PlanResult:
    robot = get_robot(robot_name)
    return RRTStarPlanner(robot, task, config).plan()


def _tasks(robot_name: str, num_obstacles: int, scale: ExperimentScale) -> List[PlanningTask]:
    return [
        random_task(robot_name, num_obstacles, seed=scale.seed + 100 * i, task_id=i)
        for i in range(scale.tasks)
    ]


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(values)) if values else float("nan")


# ------------------------------------------------------------------- figure 3


def run_fig03_breakdown(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 3: computational cost breakdown of the original RRT\\*."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        for task in _tasks(robot_name, 16, scale):
            result = _plan(robot_name, task, baseline_config(max_samples=scale.samples))
            by_cat = result.counter.macs_by_category()
            total = sum(by_cat.values())
            rows.append(
                [
                    get_robot(robot_name).label,
                    task.task_id,
                    100.0 * by_cat.get("collision_check", 0.0) / total,
                    100.0 * by_cat.get("neighbor_search", 0.0) / total,
                    100.0 * by_cat.get("other", 0.0) / total,
                ]
            )
    return FigureResult(
        figure="fig03",
        title="Fig 3: RRT* computational cost breakdown (% of MACs)",
        headers=["robot", "task", "collision_check_%", "neighbor_search_%", "other_%"],
        rows=rows,
        paper_claim="collision check contributes the largest portion in most scenarios",
    )


def run_moped_breakdown(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Companion to Fig 3: where MOPED's *remaining* work goes.

    Not a paper figure — after the co-design removes most of the original
    cost, this table shows the residual profile (collision checking still
    leads, but with the cheap first-stage ops instead of OBB-OBB SAT).
    """
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        for task in _tasks(robot_name, 16, scale):
            result = _plan(robot_name, task, moped_config("v4", max_samples=scale.samples))
            by_cat = result.counter.macs_by_category()
            total = sum(by_cat.values())
            rows.append(
                [
                    get_robot(robot_name).label,
                    task.task_id,
                    100.0 * by_cat.get("collision_check", 0.0) / total,
                    100.0 * by_cat.get("neighbor_search", 0.0) / total,
                    100.0 * by_cat.get("tree_maintenance", 0.0) / total,
                    100.0 * by_cat.get("other", 0.0) / total,
                ]
            )
    return FigureResult(
        figure="moped_breakdown",
        title="Companion: MOPED's residual cost breakdown (% of MACs)",
        headers=["robot", "task", "collision_%", "neighbor_%", "tree_%", "other_%"],
        rows=rows,
        paper_claim="(extension) the residual profile after all four optimisations",
    )


# ---------------------------------------------------------------- figures 5/18


def run_fig18_bounding_box(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Figs 5 & 18 (left): OBB vs AABB obstacle representation.

    The OBB (exact) checker must find lower-cost paths and succeed at least
    as often as the conservative AABB checker (paper: 20-50% lower cost).
    Path-cost means are *paired* — computed only over tasks where both
    checkers succeed — so failures do not skew the comparison.  A
    deterministic narrow-passage row (the diagonal channel of Fig 5, where
    AABB inflation closes the only direct route) anchors the effect.
    """
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        paired = []
        successes = {"obb": 0, "aabb": 0}
        total = 0
        for task in _tasks(robot_name, 32, scale):
            total += 1
            outcome = {}
            for checker, key in (("two_stage", "obb"), ("aabb", "aabb")):
                config = moped_config(
                    "v4",
                    checker=checker,
                    max_samples=scale.samples,
                    seed=scale.seed,
                    goal_bias=0.1,
                )
                outcome[key] = _plan(robot_name, task, config)
                if outcome[key].success:
                    successes[key] += 1
            if outcome["obb"].success and outcome["aabb"].success:
                paired.append((outcome["obb"].path_cost, outcome["aabb"].path_cost))
        rows.append(
            [
                get_robot(robot_name).label,
                _mean([c for c, _ in paired]),
                _mean([c for _, c in paired]),
                100.0 * successes["obb"] / total,
                100.0 * successes["aabb"] / total,
            ]
        )
    rows.append(_narrow_passage_row(scale))
    return FigureResult(
        figure="fig05+fig18L",
        title="Figs 5/18(left): path cost and success rate, OBB vs AABB obstacles",
        headers=["robot", "obb_path_cost", "aabb_path_cost", "obb_success_%", "aabb_success_%"],
        rows=rows,
        paper_claim="OBB representation yields 20-50% lower path cost and higher success",
        notes="random-environment costs are paired over both-success tasks; "
        "the narrow-passage row is the deterministic Fig 5 scenario",
    )


def _narrow_passage_row(scale: ExperimentScale) -> List:
    """OBB vs AABB on the diagonal-channel scenario (2D mobile robot)."""
    import numpy as np

    from repro.workloads.generator import narrow_passage_environment

    environment = narrow_passage_environment(workspace_dim=2, gap=26.0)
    start = np.array([60.0, 60.0, np.pi / 4])
    goal = np.array([240.0, 240.0, np.pi / 4])
    task = PlanningTask("mobile2d", environment, start, goal)
    out = {}
    for checker in ("two_stage", "aabb"):
        config = moped_config(
            "v4",
            checker=checker,
            max_samples=max(scale.samples, 800),
            seed=scale.seed,
            goal_bias=0.15,
        )
        out[checker] = _plan("mobile2d", task, config)
    return [
        "Narrow passage",
        out["two_stage"].path_cost if out["two_stage"].success else float("nan"),
        out["aabb"].path_cost if out["aabb"].success else float("nan"),
        100.0 if out["two_stage"].success else 0.0,
        100.0 if out["aabb"].success else 0.0,
    ]


def run_fig18_aabb_speedup(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 18 (right): MOPED with AABB-only checking vs RRT\\* ASIC (AABB).

    Paper: 5.6x - 7.6x speedup even without the OBB second stage.
    """
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        task = _tasks(robot_name, 16, scale)[0]
        robot = get_robot(robot_name)
        moped_cfg = moped_config(
            "v4", fine_stage=False, max_samples=scale.samples, seed=scale.seed,
            sampler="lfsr",
        )
        hw = MopedAccelerator().run(robot, task, moped_cfg)
        base_cfg = baseline_config(checker="aabb", max_samples=scale.samples, seed=scale.seed)
        base_plan = _plan(robot_name, task, base_cfg)
        asic = asic_report(base_plan, robot)
        rows.append([robot.label, asic.latency_s / hw.perf.latency_s])
    return FigureResult(
        figure="fig18R",
        title="Fig 18(right): MOPED-AABB speedup over RRT* ASIC-AABB",
        headers=["robot", "speedup_x"],
        rows=rows,
        paper_claim="5.6x - 7.6x speedup with AABB-only collision checking",
    )


# ------------------------------------------------------------------- figure 6


def run_fig06_two_stage(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 6: collision-check cost before/after the two-stage scheme."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        for count in scale.obstacle_counts:
            before, after = [], []
            for task in _tasks(robot_name, count, scale):
                base = _plan(robot_name, task, baseline_config(max_samples=scale.samples))
                tsps = _plan(robot_name, task, moped_config("v1", max_samples=scale.samples))
                before.append(base.counter.category_macs("collision_check"))
                after.append(tsps.counter.category_macs("collision_check"))
            rows.append(
                [
                    get_robot(robot_name).label,
                    count,
                    _mean(before),
                    _mean(after),
                    _mean(before) / _mean(after),
                ]
            )
    return FigureResult(
        figure="fig06",
        title="Fig 6: collision-check MACs, exhaustive vs two-stage",
        headers=["robot", "obstacles", "before_macs", "after_macs", "saving_x"],
        rows=rows,
        paper_claim="more than 20x saving in collision-check computation",
    )


# ------------------------------------------------------------------- figure 8


def run_fig08_approx_ns(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 8: steering-informed approximated neighbor search (SIAS).

    Left: path cost with vs without the approximation; right: NS cost saving.
    """
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        exact_ns, approx_ns, exact_cost, approx_cost = [], [], [], []
        for task in _tasks(robot_name, 16, scale):
            # Average path costs over several planner seeds: a single RRT*
            # run's cost is high-variance at reduced sampling budgets.
            for seed in range(scale.seed, scale.seed + 3):
                exact = _plan(
                    robot_name,
                    task,
                    moped_config(
                        "v2", max_samples=scale.samples, goal_bias=0.1, seed=seed
                    ),
                )
                approx = _plan(
                    robot_name,
                    task,
                    moped_config(
                        "v3", max_samples=scale.samples, goal_bias=0.1, seed=seed
                    ),
                )
                # Fig 8 (right) measures the second (neighborhood) search —
                # the operation SIAS replaces with a buffer read.
                exact_ns.append(exact.neighborhood_macs)
                approx_ns.append(approx.neighborhood_macs)
                if exact.success:
                    exact_cost.append(exact.path_cost)
                if approx.success:
                    approx_cost.append(approx.path_cost)
        rows.append(
            [
                get_robot(robot_name).label,
                _mean(exact_cost),
                _mean(approx_cost),
                _mean(exact_ns) / _mean(approx_ns),
            ]
        )
    return FigureResult(
        figure="fig08",
        title="Fig 8: approximated NS - path cost preserved, NS cost reduced",
        headers=["robot", "exact_path_cost", "approx_path_cost", "ns_saving_x"],
        rows=rows,
        paper_claim="at least 4x NS saving without path-cost degradation",
        notes="costs averaged over 3 planner seeds; the 2D mobile robot "
        "carries a small premium at reduced budgets (see EXPERIMENTS.md)",
    )


# ------------------------------------------------------------------ figure 10


def run_fig10_insertion(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 10: low-cost O(1) insertion vs conventional tree insertion."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        conventional, lci = [], []
        for task in _tasks(robot_name, 16, scale):
            v3 = _plan(robot_name, task, moped_config("v3", max_samples=scale.samples))
            v4 = _plan(robot_name, task, moped_config("v4", max_samples=scale.samples))
            conventional.append(v3.total_macs)
            lci.append(v4.total_macs)
        saving_pct = 100.0 * (1.0 - _mean(lci) / _mean(conventional))
        rows.append([get_robot(robot_name).label, _mean(conventional), _mean(lci), saving_pct])
    return FigureResult(
        figure="fig10",
        title="Fig 10: total MACs with conventional vs steering-informed insertion",
        headers=["robot", "conventional_macs", "lci_macs", "saving_%"],
        rows=rows,
        paper_claim="more than 20% lower computational cost (on top of V3)",
    )


# ------------------------------------------------------------------ figure 14


def run_fig14_algorithmic(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 14: algorithmic performance across robots and environments."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        for count in scale.obstacle_counts:
            base_macs, moped_macs, base_cost, moped_cost = [], [], [], []
            for task in _tasks(robot_name, count, scale):
                base = _plan(
                    robot_name,
                    task,
                    baseline_config(max_samples=scale.samples, goal_bias=0.1),
                )
                moped = _plan(
                    robot_name,
                    task,
                    moped_config("v4", max_samples=scale.samples, goal_bias=0.1),
                )
                base_macs.append(base.total_macs)
                moped_macs.append(moped.total_macs)
                if base.success and moped.success:
                    base_cost.append(base.path_cost)
                    moped_cost.append(moped.path_cost)
            cost_ratio = (
                _mean(moped_cost) / _mean(base_cost) if base_cost else float("nan")
            )
            rows.append(
                [
                    get_robot(robot_name).label,
                    count,
                    _mean(base_macs) / _mean(moped_macs),
                    cost_ratio,
                ]
            )
    return FigureResult(
        figure="fig14",
        title="Fig 14: MOPED cost reduction and path quality across workloads",
        headers=["robot", "obstacles", "macs_saving_x", "path_cost_ratio"],
        rows=rows,
        paper_claim=(
            "large cost reduction without compromising path quality; "
            "saving grows with DoF and obstacle count"
        ),
    )


# ------------------------------------------------------------------ figure 15


def run_fig15_hardware(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 15: hardware performance vs CPU / ASIC / ASIC+CODAcc."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        robot = get_robot(robot_name)
        for count in scale.obstacle_counts:
            task = _tasks(robot_name, count, scale)[0]
            hw = MopedAccelerator().run(
                robot,
                task,
                moped_config("v4", max_samples=scale.samples, seed=scale.seed, sampler="lfsr"),
            )
            base_plan = _plan(
                robot_name, task, baseline_config(max_samples=scale.samples, seed=scale.seed)
            )
            cpu = cpu_report(base_plan)
            asic = asic_report(base_plan, robot)
            grid_plan = _plan(
                robot_name,
                task,
                baseline_config(checker="grid", max_samples=scale.samples, seed=scale.seed),
            )
            codacc = codacc_report(grid_plan, robot)
            moped = hw.perf
            rows.append(
                [
                    robot.label,
                    count,
                    moped.latency_s * 1e3,
                    moped.ratios_vs(cpu)["speedup"],
                    moped.ratios_vs(cpu)["energy_efficiency"],
                    moped.ratios_vs(asic)["speedup"],
                    moped.ratios_vs(asic)["energy_efficiency"],
                    moped.ratios_vs(asic)["area_efficiency"],
                    moped.ratios_vs(codacc)["speedup"],
                    moped.ratios_vs(codacc)["energy_efficiency"],
                    moped.ratios_vs(codacc)["area_efficiency"],
                ]
            )
    return FigureResult(
        figure="fig15",
        title="Fig 15: MOPED vs CPU / RRT* ASIC / ASIC+CODAcc",
        headers=[
            "robot",
            "obstacles",
            "moped_ms",
            "cpu_speedup",
            "cpu_eeff",
            "asic_speedup",
            "asic_eeff",
            "asic_aeff",
            "codacc_speedup",
            "codacc_eeff",
            "codacc_aeff",
        ],
        rows=rows,
        paper_claim=(
            "0.35-0.96 ms latency; 1066-6149x / 453.6-10744.6x vs CPU; "
            "2.3-41.1x / 2.1-38.2x / 2.1-38.3x vs ASIC; 2-9.2x / 2-9.3x / 1.7-7.9x vs CODAcc"
        ),
        notes="paper runs 5000 samples on a synthesized 28nm design; scaled runs here",
    )


# ------------------------------------------------------------------ figure 16


def run_fig16_breakdown(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 16: per-optimisation saving ladder and software-only speedup."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        macs = {}
        for variant in ("baseline", "v1", "v2", "v3", "v4"):
            per_task = []
            for task in _tasks(robot_name, 16, scale):
                config = (
                    baseline_config(max_samples=scale.samples)
                    if variant == "baseline"
                    else moped_config(variant, max_samples=scale.samples)
                )
                per_task.append(_plan(robot_name, task, config).total_macs)
            macs[variant] = _mean(per_task)
        ladder = [
            100.0 * (1.0 - macs["v1"] / macs["baseline"]),
            100.0 * (1.0 - macs["v2"] / macs["v1"]),
            100.0 * (1.0 - macs["v3"] / macs["v2"]),
            100.0 * (1.0 - macs["v4"] / macs["v3"]),
        ]
        software_speedup = macs["baseline"] / macs["v4"]
        rows.append([get_robot(robot_name).label, *ladder, software_speedup])
    return FigureResult(
        figure="fig16",
        title="Fig 16: saving per optimisation (V1..V4) and software-only speedup",
        headers=[
            "robot",
            "v1_tsps_saving_%",
            "v2_stns_saving_%",
            "v3_sias_saving_%",
            "v4_lci_saving_%",
            "software_speedup_x",
        ],
        rows=rows,
        paper_claim=(
            "V1 33.9-77.7%, V2 +48.2-80.1%, V3 +28.3-47%, V4 +14.6-66%; "
            "software-only speedup 2.77-4.14x"
        ),
    )


# ------------------------------------------------------------------ figure 17


def run_fig17_snr(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 17: speculate-and-repair speedup across robots and environments."""
    scale = scale or ExperimentScale.from_env()
    params = MopedHardwareParams()
    rows = []
    for robot_name in scale.robots:
        task = _tasks(robot_name, 16, scale)[0]
        plan = _plan(
            robot_name,
            task,
            moped_config("v4", max_samples=scale.samples, seed=scale.seed, sampler="lfsr"),
        )
        report = snr_latency_cycles(plan.rounds, params)
        rows.append([get_robot(robot_name).label, 16, report.speedup])
    sweep_robot = "viperx300" if "viperx300" in scale.robots else scale.robots[0]
    for count in scale.obstacle_counts:
        task = _tasks(sweep_robot, count, scale)[0]
        plan = _plan(
            sweep_robot,
            task,
            moped_config("v4", max_samples=scale.samples, seed=scale.seed, sampler="lfsr"),
        )
        report = snr_latency_cycles(plan.rounds, params)
        rows.append([get_robot(sweep_robot).label + " (env sweep)", count, report.speedup])
    return FigureResult(
        figure="fig17",
        title="Fig 17: S&R speedup across robots (left) and environments (right)",
        headers=["workload", "obstacles", "snr_speedup_x"],
        rows=rows,
        paper_claim="consistent speedup (about 2x for the 2D mobile workload)",
    )


# ------------------------------------------------------------------ figure 19


def run_fig19_scaling(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 19 (left): MOPED speedup grows with the number of samplings."""
    scale = scale or ExperimentScale.from_env()
    checkpoints = [max(1, int(f * scale.samples)) for f in (0.25, 0.5, 0.75, 1.0)]
    rows = []
    for robot_name in scale.robots:
        task = _tasks(robot_name, 16, scale)[0]
        base = _plan(robot_name, task, baseline_config(max_samples=scale.samples))
        moped = _plan(robot_name, task, moped_config("v4", max_samples=scale.samples))
        base_cum = np.cumsum([r.total_macs for r in base.rounds])
        moped_cum = np.cumsum([r.total_macs for r in moped.rounds])
        for cp in checkpoints:
            rows.append(
                [
                    get_robot(robot_name).label,
                    cp,
                    float(base_cum[cp - 1] / moped_cum[cp - 1]),
                ]
            )
    return FigureResult(
        figure="fig19L",
        title="Fig 19(left): cumulative MOPED speedup at sampling checkpoints",
        headers=["robot", "samples", "speedup_x"],
        rows=rows,
        paper_claim="steadily increasing speedup as more points are sampled",
        notes="the increasing trend is driven by the baseline's O(n) "
        "neighbor search; it emerges once NS is a visible share of "
        "baseline work — early for low-DoF workloads, at much larger "
        "sample counts for the CC-dominated arms (see EXPERIMENTS.md)",
    )


def run_fig19_kd_comparison(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Fig 19 (right): SI-MBR-Tree vs KD-tree neighbor-search cost in RRT\\*.

    The KD baseline pays periodic rebuilds (the dynamic-dataset mitigation);
    SI-MBR uses the paper's full configuration.
    """
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        kd_ns, simbr_ns = [], []
        for task in _tasks(robot_name, 16, scale):
            kd_cfg = moped_config(
                "v1",
                neighbor_strategy="kd",
                kd_rebuild_every=max(50, scale.samples // 8),
                max_samples=scale.samples,
            )
            kd = _plan(robot_name, task, kd_cfg)
            simbr = _plan(robot_name, task, moped_config("v4", max_samples=scale.samples))
            kd_ns.append(kd.counter.category_macs("neighbor_search"))
            simbr_ns.append(simbr.counter.category_macs("neighbor_search"))
        rows.append(
            [get_robot(robot_name).label, _mean(kd_ns), _mean(simbr_ns), _mean(kd_ns) / _mean(simbr_ns)]
        )
    return FigureResult(
        figure="fig19R",
        title="Fig 19(right): NS MACs, KD-tree vs SI-MBR-Tree",
        headers=["robot", "kd_ns_macs", "simbr_ns_macs", "saving_x"],
        rows=rows,
        paper_claim="4.12x - 7.76x saving over KD-tree-based neighbor search",
    )


# ------------------------------------------------------ buffer / cache studies


def run_snr_buffer_stats(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Section IV-B: FIFO depth and missing-buffer occupancy across workloads."""
    scale = scale or ExperimentScale.from_env()
    params = MopedHardwareParams()
    rows = []
    for robot_name in scale.robots:
        for count in scale.obstacle_counts:
            task = _tasks(robot_name, count, scale)[0]
            plan = _plan(
                robot_name,
                task,
                moped_config("v4", max_samples=scale.samples, seed=scale.seed, sampler="lfsr"),
            )
            report = snr_latency_cycles(plan.rounds, params)
            rows.append(
                [
                    get_robot(robot_name).label,
                    count,
                    report.max_fifo_occupancy,
                    report.max_missing_neighbors,
                    report.fifo_stall_cycles,
                ]
            )
    return FigureResult(
        figure="snr_buffers",
        title="Section IV-B: FIFO / Missing Neighbors Buffer occupancy",
        headers=["robot", "obstacles", "max_fifo", "max_missing", "stall_cycles"],
        rows=rows,
        paper_claim="20-deep FIFO and 5-entry missing buffer suffice (0.75 KB)",
    )


def run_cache_stats(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Section IV-C: cache hit statistics and memory-energy saving."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for robot_name in scale.robots:
        robot = get_robot(robot_name)
        task = _tasks(robot_name, 16, scale)[0]
        config = moped_config(
            "v4", max_samples=scale.samples, seed=scale.seed, sampler="lfsr"
        )
        cached = MopedAccelerator(enable_caches=True).run(robot, task, config)
        uncached = MopedAccelerator(enable_caches=False).run(robot, task, config)
        saving = 100.0 * (
            1.0 - cached.cache.total_energy_j / uncached.cache.total_energy_j
        )
        rows.append(
            [
                robot.label,
                cached.cache.top_cache_hit_rate,
                cached.cache.trace_hits,
                cached.cache.neighbor_cache_reads,
                saving,
            ]
        )
    return FigureResult(
        figure="caching",
        title="Section IV-C: multi-level caching statistics",
        headers=["robot", "top_hit_rate", "trace_hits", "neighbor_reads", "mem_energy_saving_%"],
        rows=rows,
        paper_claim="caching reduces data movement and resolves resource conflicts",
    )
