"""Side-by-side comparison of planner configurations on shared tasks.

The utility a user reaches for when tuning: run several named
configurations over the same task suite and get one aligned table of
success rate, path cost, and computational cost, plus pairwise ratios
against a designated reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.suite import SuiteStats, evaluate_suite
from repro.analysis.tables import format_table
from repro.core.config import PlannerConfig
from repro.core.world import PlanningTask


@dataclass(frozen=True)
class Comparison:
    """Results of comparing several configurations on one task suite."""

    stats: Dict[str, SuiteStats]
    reference: str

    def table(self) -> str:
        """Aligned comparison table with ratios against the reference."""
        ref = self.stats[self.reference]
        rows = []
        for name, stat in self.stats.items():
            cost_ratio = (
                stat.mean_path_cost / ref.mean_path_cost
                if ref.mean_path_cost == ref.mean_path_cost  # not NaN
                else float("nan")
            )
            rows.append(
                [
                    name,
                    stat.success_rate,
                    stat.mean_path_cost,
                    cost_ratio,
                    stat.mean_macs,
                    ref.mean_macs / stat.mean_macs,
                ]
            )
        return format_table(
            ["config", "success", "path_cost", "cost_vs_ref", "macs", "speedup_vs_ref"],
            rows,
            title=f"Configuration comparison (reference: {self.reference})",
        )

    def speedup(self, name: str) -> float:
        """MAC-count speedup of ``name`` relative to the reference."""
        return self.stats[self.reference].mean_macs / self.stats[name].mean_macs


def compare_configs(
    tasks: List[PlanningTask],
    configs: Dict[str, PlannerConfig],
    reference: Optional[str] = None,
) -> Comparison:
    """Evaluate every named configuration over ``tasks``.

    Args:
        tasks: shared task suite.
        configs: name -> PlannerConfig mapping.
        reference: name ratios are computed against (default: first entry).
    """
    if not configs:
        raise ValueError("need at least one configuration")
    names = list(configs)
    reference = reference if reference is not None else names[0]
    if reference not in configs:
        raise KeyError(f"reference {reference!r} not among configs {names}")
    stats = {name: evaluate_suite(tasks, config) for name, config in configs.items()}
    return Comparison(stats=stats, reference=reference)
