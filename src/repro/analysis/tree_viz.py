"""SI-MBR-Tree structure diagnostics and text visualisation.

Section III-C argues the steering-informed insertion yields "smaller
spatial overlap and more balanced tree structure".  These helpers turn
that claim into numbers (per-level fanout/occupancy/overlap statistics)
and a text rendering of the hierarchy for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.spatial.simbr import SIMBRTree


@dataclass(frozen=True)
class LevelStats:
    """Aggregate statistics of one tree level."""

    depth: int
    nodes: int
    mean_fanout: float
    mean_volume: float
    overlap_volume: float


@dataclass(frozen=True)
class TreeStats:
    """Whole-tree structural statistics."""

    size: int
    height: int
    levels: List[LevelStats]
    total_overlap: float
    mean_leaf_occupancy: float

    def summary(self) -> str:
        lines = [
            f"SI-MBR-Tree: {self.size} entries, height {self.height}, "
            f"total sibling overlap {self.total_overlap:.4g}, "
            f"mean leaf occupancy {self.mean_leaf_occupancy:.2f}"
        ]
        for level in self.levels:
            lines.append(
                f"  depth {level.depth}: {level.nodes} nodes, "
                f"fanout {level.mean_fanout:.2f}, "
                f"mean volume {level.mean_volume:.4g}, "
                f"overlap {level.overlap_volume:.4g}"
            )
        return "\n".join(lines)


def tree_stats(tree: SIMBRTree) -> TreeStats:
    """Compute per-level structural statistics of an SI-MBR-Tree."""
    root = tree._root
    if root is None:
        return TreeStats(size=0, height=0, levels=[], total_overlap=0.0,
                         mean_leaf_occupancy=0.0)
    levels: List[LevelStats] = []
    leaf_occupancies: List[int] = []
    frontier = [root]
    depth = 0
    while frontier:
        volumes, fanouts = [], []
        overlap = 0.0
        next_frontier = []
        for node in frontier:
            volumes.append(float(np.prod(node.hi - node.lo)))
            if node.is_leaf:
                fanouts.append(len(node.entries))
                leaf_occupancies.append(len(node.entries))
            else:
                fanouts.append(len(node.children))
                for i, a in enumerate(node.children):
                    for b in node.children[i + 1 :]:
                        lo = np.maximum(a.lo, b.lo)
                        hi = np.minimum(a.hi, b.hi)
                        gaps = hi - lo
                        if np.all(gaps > 0):
                            overlap += float(np.prod(gaps))
                next_frontier.extend(node.children)
        levels.append(
            LevelStats(
                depth=depth,
                nodes=len(frontier),
                mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
                mean_volume=float(np.mean(volumes)) if volumes else 0.0,
                overlap_volume=overlap,
            )
        )
        frontier = next_frontier
        depth += 1
    return TreeStats(
        size=len(tree),
        height=tree.height,
        levels=levels,
        total_overlap=tree.total_overlap(),
        mean_leaf_occupancy=float(np.mean(leaf_occupancies)) if leaf_occupancies else 0.0,
    )


def render_tree(tree: SIMBRTree, max_depth: int = 3, max_children: int = 4) -> str:
    """Text rendering of the top of the hierarchy (truncated for sanity)."""
    root = tree._root
    if root is None:
        return "(empty tree)"
    lines: List[str] = []

    def walk(node, depth: int, prefix: str) -> None:
        volume = float(np.prod(node.hi - node.lo))
        if node.is_leaf:
            lines.append(f"{prefix}leaf[{len(node.entries)} entries] vol={volume:.3g}")
            return
        lines.append(f"{prefix}node[{len(node.children)} children] vol={volume:.3g}")
        if depth >= max_depth:
            lines.append(prefix + "  ...")
            return
        for child in node.children[:max_children]:
            walk(child, depth + 1, prefix + "  ")
        if len(node.children) > max_children:
            lines.append(f"{prefix}  (+{len(node.children) - max_children} more)")

    walk(root, 0, "")
    return "\n".join(lines)
