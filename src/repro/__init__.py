"""repro -- a full Python reproduction of MOPED (HPCA 2024).

MOPED is an algorithm/hardware co-design for sampling-based motion planning
(RRT*) with flexible dimension support.  This package implements the
complete system: the geometry and spatial-index substrates, the MOPED
planning algorithm with every ablation rung, the baseline planners, and a
functional model of the MOPED hardware engine with its speculate-and-repair
pipeline, multi-level caches, and CPU/ASIC/CODAcc comparison points.

Quickstart::

    from repro import MopedEngine, get_robot
    from repro.workloads import random_environment, random_start_goal
    import numpy as np

    robot = get_robot("viperx300")
    env = random_environment(workspace_dim=3, num_obstacles=16, seed=0)
    start, goal = random_start_goal(robot, env, np.random.default_rng(0))
    result = MopedEngine(robot, env, max_samples=800, seed=0).plan(start, goal)
    print(result.summary())
"""

from repro.core import (
    Environment,
    RRTConnectPlanner,
    MopedEngine,
    OpCounter,
    PlanResult,
    PlannerConfig,
    PlanningTask,
    RRTStarPlanner,
    RobotModel,
    all_robots,
    baseline_config,
    get_robot,
    moped_config,
    path_length,
    plan,
)

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "RRTConnectPlanner",
    "MopedEngine",
    "OpCounter",
    "PlanResult",
    "PlannerConfig",
    "PlanningTask",
    "RRTStarPlanner",
    "RobotModel",
    "all_robots",
    "baseline_config",
    "get_robot",
    "moped_config",
    "path_length",
    "plan",
    "__version__",
]
