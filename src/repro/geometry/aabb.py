"""Axis-aligned bounding boxes (AABB) in arbitrary dimension.

AABBs serve two roles in MOPED:

* the node bounding method of the obstacle R-tree (first-stage collision
  filter, Section III-A) and of the SI-MBR-Tree (Section III-B), and
* the coarse obstacle representation whose spatial information is stored in
  the AABB SRAM (6 16-bit values for 3D, 4 for 2D: min/max per axis are
  derivable from centre + halfwidth; Section IV-A).

We store an AABB as ``lo``/``hi`` corner vectors, the natural form for both
MINDIST and the R-tree MBR arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box ``[lo, hi]`` in ``dim`` dimensions.

    Attributes:
        lo: minimum corner, shape ``(dim,)``.
        hi: maximum corner, shape ``(dim,)``.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=float)
        hi = np.asarray(self.hi, dtype=float)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"corner shapes must match and be 1-D, got {lo.shape}/{hi.shape}")
        if np.any(lo > hi):
            raise ValueError(f"AABB lo must be <= hi componentwise, got lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def dim(self) -> int:
        """Number of spatial dimensions."""
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        """Centre point of the box."""
        return (self.lo + self.hi) / 2.0

    @property
    def half_extents(self) -> np.ndarray:
        """Positive halfwidth extents along each axis."""
        return (self.hi - self.lo) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Full side lengths along each axis."""
        return self.hi - self.lo

    def volume(self) -> float:
        """Hyper-volume (area in 2D) of the box.

        This is the quantity minimised by the conventional R-tree insertion's
        *area enlargement* criterion (Section III-C, Fig 9).
        """
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree "margin" metric)."""
        return float(np.sum(self.hi - self.lo))

    def contains_point(self, point: np.ndarray) -> bool:
        """Return True when ``point`` lies inside or on the boundary."""
        point = np.asarray(point, dtype=float)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def contains_aabb(self, other: "AABB") -> bool:
        """Return True when ``other`` is fully inside this box."""
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "AABB") -> bool:
        """Interval-overlap test on every axis (the AABB-AABB SAT).

        Implemented as a scalar loop: the boxes here are 2-13 dimensional,
        where per-axis early exit beats vectorised comparison dispatch.
        """
        a_lo, a_hi, b_lo, b_hi = self.lo, self.hi, other.lo, other.hi
        for i in range(a_lo.shape[0]):
            if a_lo[i] > b_hi[i] or b_lo[i] > a_hi[i]:
                return False
        return True

    def union(self, other: "AABB") -> "AABB":
        """Smallest AABB enclosing both boxes."""
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expanded_to(self, point: np.ndarray) -> "AABB":
        """Smallest AABB enclosing this box and ``point``."""
        point = np.asarray(point, dtype=float)
        return AABB(np.minimum(self.lo, point), np.maximum(self.hi, point))

    def enlargement(self, point: np.ndarray) -> float:
        """Volume increase needed to absorb ``point``.

        This is the per-level cost the conventional insertion evaluates and
        the O(1) steering-informed insertion avoids (Section III-C).
        """
        return self.expanded_to(point).volume() - self.volume()

    def corners(self) -> np.ndarray:
        """All 2^dim corner points, shape ``(2**dim, dim)``."""
        dim = self.dim
        out = np.empty((2**dim, dim))
        for i in range(2**dim):
            for d in range(dim):
                out[i, d] = self.hi[d] if (i >> d) & 1 else self.lo[d]
        return out

    @staticmethod
    def from_center(center: Sequence[float], half_extents: Sequence[float]) -> "AABB":
        """Build from centre + halfwidth extents (the SRAM layout of IV-A)."""
        center = np.asarray(center, dtype=float)
        half_extents = np.asarray(half_extents, dtype=float)
        if np.any(half_extents < 0):
            raise ValueError("half extents must be non-negative")
        return AABB(center - half_extents, center + half_extents)


def aabb_of_points(points: np.ndarray) -> AABB:
    """Minimum bounding rectangle of a point set, shape ``(n, dim)``."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("need a non-empty (n, dim) array of points")
    return AABB(points.min(axis=0), points.max(axis=0))


def aabb_union(boxes: Iterable[AABB]) -> AABB:
    """Minimum bounding rectangle of several AABBs."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("need at least one box")
    lo = np.minimum.reduce([b.lo for b in boxes])
    hi = np.maximum.reduce([b.hi for b in boxes])
    return AABB(lo, hi)
