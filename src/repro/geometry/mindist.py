"""MINDIST: minimum distance from a point to an axis-aligned rectangle.

MINDIST (Cheung & Fu, SIGMOD Record 1998; cited as [14] in the paper) is the
pruning bound driving SI-MBR-Tree neighbor search (Section III-B): the
MINDIST between a query point and an MBR lower-bounds the distance from the
query to *every* point inside the MBR, so any subtree whose MBR MINDIST
exceeds the current best distance can be skipped wholesale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.aabb import AABB


def mindist_sq_point_to_rect(point: np.ndarray, rect: AABB) -> float:
    """Squared MINDIST from ``point`` to the rectangle ``rect``.

    Per dimension the nearest rectangle coordinate is the clamp of the point
    coordinate into ``[lo, hi]``; MINDIST is the distance to that clamped
    point.  Zero when the point is inside the rectangle.
    """
    point = np.asarray(point, dtype=float)
    if point.shape != rect.lo.shape:
        raise ValueError(f"point dim {point.shape} != rect dim {rect.lo.shape}")
    below = np.maximum(rect.lo - point, 0.0)
    above = np.maximum(point - rect.hi, 0.0)
    gap = np.maximum(below, above)
    return float(gap @ gap)


def mindist_point_to_rect(point: np.ndarray, rect: AABB) -> float:
    """MINDIST from ``point`` to ``rect`` (Euclidean)."""
    return math.sqrt(mindist_sq_point_to_rect(point, rect))


def mindist_sq_point_to_rects(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorised squared MINDIST from one point to many rectangles.

    Args:
        point: query, shape ``(dim,)``.
        lo: stacked minimum corners, shape ``(n, dim)``.
        hi: stacked maximum corners, shape ``(n, dim)``.

    Returns:
        Squared MINDIST per rectangle, shape ``(n,)``.
    """
    point = np.asarray(point, dtype=float)
    gap = np.maximum(np.maximum(lo - point, point - hi), 0.0)
    return np.einsum("nd,nd->n", gap, gap)
