"""Geometric substrate for MOPED: bounding volumes and collision primitives.

This subpackage implements the geometry kernel the paper's hardware datapath
operates on (Section II-A, IV-A):

* axis-aligned bounding boxes (:mod:`repro.geometry.aabb`),
* oriented bounding boxes in 2D and 3D (:mod:`repro.geometry.obb`),
* rotation-matrix helpers (:mod:`repro.geometry.rotations`),
* Separating Axis Theorem collision tests (:mod:`repro.geometry.sat`),
* MINDIST point-to-rectangle distance (:mod:`repro.geometry.mindist`),
* swept-movement discretisation (:mod:`repro.geometry.motion`).
"""

from repro.geometry.aabb import AABB, aabb_of_points, aabb_union
from repro.geometry.obb import OBB, obb_from_aabb
from repro.geometry.rotations import (
    rotation_2d,
    rotation_from_euler,
    random_rotation_2d,
    random_rotation_3d,
)
from repro.geometry.sat import (
    aabb_intersects_aabb,
    aabb_intersects_obb,
    obb_intersects_obb,
)
from repro.geometry.mindist import mindist_point_to_rect, mindist_sq_point_to_rect
from repro.geometry.motion import interpolate_configs, motion_steps

__all__ = [
    "AABB",
    "OBB",
    "aabb_of_points",
    "aabb_union",
    "obb_from_aabb",
    "rotation_2d",
    "rotation_from_euler",
    "random_rotation_2d",
    "random_rotation_3d",
    "aabb_intersects_aabb",
    "aabb_intersects_obb",
    "obb_intersects_obb",
    "mindist_point_to_rect",
    "mindist_sq_point_to_rect",
    "interpolate_configs",
    "motion_steps",
]
