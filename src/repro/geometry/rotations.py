"""Rotation-matrix helpers for 2D and 3D oriented bounding boxes.

The MOPED hardware encodes an OBB's orientation as an explicit rotation
matrix (9 values for 3D, 4 for 2D; Section IV-A).  These helpers build
those matrices from compact angle parameterisations and sample random
orientations for the workload generator (Section V).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def rotation_2d(theta: float) -> np.ndarray:
    """Return the 2x2 rotation matrix for a counter-clockwise angle ``theta``.

    Columns are the box's local x/y axes expressed in world coordinates.
    """
    c, s = math.cos(theta), math.sin(theta)
    return np.array([[c, -s], [s, c]], dtype=float)


def rotation_from_euler(yaw: float, pitch: float = 0.0, roll: float = 0.0) -> np.ndarray:
    """Return the 3x3 rotation matrix for intrinsic Z-Y-X Euler angles.

    ``yaw`` rotates about z, ``pitch`` about y, ``roll`` about x, matching the
    paper's 3D drone parameterisation (yaw, pitch, roll; Section V).
    """
    cy, sy = math.cos(yaw), math.sin(yaw)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cr, sr = math.cos(roll), math.sin(roll)
    rz = np.array([[cy, -sy, 0.0], [sy, cy, 0.0], [0.0, 0.0, 1.0]])
    ry = np.array([[cp, 0.0, sp], [0.0, 1.0, 0.0], [-sp, 0.0, cp]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cr, -sr], [0.0, sr, cr]])
    return rz @ ry @ rx


def rotation_about_axis(axis: np.ndarray, angle: float) -> np.ndarray:
    """Return the 3x3 rotation of ``angle`` radians about a unit ``axis``.

    Uses the Rodrigues formula; used by the serial-arm forward kinematics.
    """
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    c, s = math.cos(angle), math.sin(angle)
    t = 1.0 - c
    return np.array(
        [
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ]
    )


def rotations_2d_batch(thetas: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rotation_2d`: ``(k,)`` angles to ``(k, 2, 2)``."""
    thetas = np.asarray(thetas, dtype=float)
    c, s = np.cos(thetas), np.sin(thetas)
    out = np.empty(thetas.shape + (2, 2))
    out[..., 0, 0] = c
    out[..., 0, 1] = -s
    out[..., 1, 0] = s
    out[..., 1, 1] = c
    return out


def rotations_from_euler_batch(yaw: np.ndarray, pitch: np.ndarray,
                               roll: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rotation_from_euler`: ``(k,)`` angle triples to
    ``(k, 3, 3)`` via the same ``Rz @ Ry @ Rx`` product."""
    yaw = np.asarray(yaw, dtype=float)
    k = yaw.shape
    cy, sy = np.cos(yaw), np.sin(yaw)
    cp, sp = np.cos(np.asarray(pitch, dtype=float)), np.sin(np.asarray(pitch, dtype=float))
    cr, sr = np.cos(np.asarray(roll, dtype=float)), np.sin(np.asarray(roll, dtype=float))
    rz = np.zeros(k + (3, 3))
    rz[..., 0, 0], rz[..., 0, 1] = cy, -sy
    rz[..., 1, 0], rz[..., 1, 1] = sy, cy
    rz[..., 2, 2] = 1.0
    ry = np.zeros(k + (3, 3))
    ry[..., 0, 0], ry[..., 0, 2] = cp, sp
    ry[..., 1, 1] = 1.0
    ry[..., 2, 0], ry[..., 2, 2] = -sp, cp
    rx = np.zeros(k + (3, 3))
    rx[..., 0, 0] = 1.0
    rx[..., 1, 1], rx[..., 1, 2] = cr, -sr
    rx[..., 2, 1], rx[..., 2, 2] = sr, cr
    # Stacked ``matmul`` runs the same per-slice kernel as the scalar
    # ``rz @ ry @ rx``, so each slice is bit-identical to rotation_from_euler.
    return rz @ ry @ rx


def rotations_about_axis_batch(axis: np.ndarray, angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rotation_about_axis`: one axis, ``(k,)`` angles.

    Uses the identical Rodrigues entries so each ``(3, 3)`` slice matches the
    scalar builder's values; used by the batch forward kinematics.
    """
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    angles = np.asarray(angles, dtype=float)
    c, s = np.cos(angles), np.sin(angles)
    t = 1.0 - c
    out = np.empty(angles.shape + (3, 3))
    out[..., 0, 0] = t * x * x + c
    out[..., 0, 1] = t * x * y - s * z
    out[..., 0, 2] = t * x * z + s * y
    out[..., 1, 0] = t * x * y + s * z
    out[..., 1, 1] = t * y * y + c
    out[..., 1, 2] = t * y * z - s * x
    out[..., 2, 0] = t * x * z - s * y
    out[..., 2, 1] = t * y * z + s * x
    out[..., 2, 2] = t * z * z + c
    return out


def rotations_about_axes_batch(axes: np.ndarray, angles: np.ndarray) -> np.ndarray:
    """Vectorized Rodrigues over many axes at once.

    Args:
        axes: ``(L, 3)`` rotation axes (need not be normalised).
        angles: ``(..., L)`` angles, one column per axis.

    Returns:
        ``(..., L, 3, 3)`` rotation matrices; slice ``[..., i, :, :]`` is
        bit-identical to ``rotation_about_axis(axes[i], angles[..., i])``
        because the entries use the same Rodrigues expressions (each axis is
        normalised with the scalar builder's ``axis / norm``).
    """
    axes = np.asarray(axes, dtype=float)
    unit = np.empty_like(axes)
    for i, axis in enumerate(axes):
        norm = np.linalg.norm(axis)
        if norm == 0.0:
            raise ValueError("rotation axis must be non-zero")
        unit[i] = axis / norm
    x, y, z = unit[:, 0], unit[:, 1], unit[:, 2]
    angles = np.asarray(angles, dtype=float)
    c, s = np.cos(angles), np.sin(angles)
    t = 1.0 - c
    out = np.empty(angles.shape + (3, 3))
    out[..., 0, 0] = t * x * x + c
    out[..., 0, 1] = t * x * y - s * z
    out[..., 0, 2] = t * x * z + s * y
    out[..., 1, 0] = t * x * y + s * z
    out[..., 1, 1] = t * y * y + c
    out[..., 1, 2] = t * y * z - s * x
    out[..., 2, 0] = t * x * z - s * y
    out[..., 2, 1] = t * y * z + s * x
    out[..., 2, 2] = t * z * z + c
    return out


def random_rotation_2d(rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample a uniformly random 2D rotation matrix."""
    rng = rng if rng is not None else np.random.default_rng()
    return rotation_2d(rng.uniform(-math.pi, math.pi))


def random_rotation_3d(rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample a uniformly random 3D rotation matrix (via random quaternion)."""
    rng = rng if rng is not None else np.random.default_rng()
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def is_rotation_matrix(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` is a proper rotation (orthonormal, det=+1)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape not in ((2, 2), (3, 3)):
        return False
    identity = np.eye(matrix.shape[0])
    if not np.allclose(matrix @ matrix.T, identity, atol=atol):
        return False
    return bool(abs(np.linalg.det(matrix) - 1.0) <= atol)
