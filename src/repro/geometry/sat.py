"""Separating Axis Theorem (SAT) collision tests.

These are the kernel operations executed by MOPED's collision checker
(Section II-C, IV-A):

* ``obb_intersects_obb`` — the accurate second-stage check.  In 3D it tests
  the 15 candidate axes derived from the two boxes' geometric information
  (3 + 3 face axes, 9 edge cross-product axes); in 2D it tests 4 axes.
* ``aabb_intersects_obb`` — the cheap first-stage check between an R-tree
  node's AABB and the robot's OBB.  Because one frame is the world frame,
  no change-of-basis product is needed, which is what makes it "much more
  computationally efficient than OBB-OBB type" (Section III-A).
* ``aabb_intersects_aabb`` — per-axis interval overlap.

The tests are exact for box-box intersection (SAT is a complete separating
criterion for convex polytopes).  A small epsilon is added to the absolute
rotation entries to make near-parallel edge cross products robust, following
Ericson, *Real-Time Collision Detection*.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB

_EPS = 1e-9


def aabb_intersects_aabb(a: AABB, b: AABB) -> bool:
    """Interval-overlap SAT for two axis-aligned boxes."""
    return a.intersects(b)


def obb_intersects_obb(a: OBB, b: OBB) -> bool:
    """Exact SAT intersection test between two OBBs (2D or 3D)."""
    if a.dim != b.dim:
        raise ValueError("OBB dimensions must match")
    if a.dim == 3:
        return _obb_obb_3d(a, b)
    return _obb_obb_2d(a, b)


def aabb_intersects_obb(box: AABB, obb: OBB) -> bool:
    """Exact SAT intersection test between an AABB and an OBB.

    Implemented by treating the AABB as an identity-rotation OBB but skipping
    the change-of-basis matrix product (``R`` is simply the OBB's rotation),
    which is the cost advantage the first-stage check exploits.
    """
    if box.dim != obb.dim:
        raise ValueError("dimensions must match")
    ident = OBB(box.center, box.half_extents, np.eye(box.dim))
    if box.dim == 3:
        return _obb_obb_3d(ident, obb)
    return _obb_obb_2d(ident, obb)


def _obb_obb_3d(a: OBB, b: OBB) -> bool:
    """Ericson's 15-axis OBB-OBB SAT in 3D."""
    ra_ext = a.half_extents
    rb_ext = b.half_extents
    # Rotation expressing b in a's coordinate frame.
    rot = a.rotation.T @ b.rotation
    # Translation in a's frame.
    t = a.rotation.T @ (b.center - a.center)
    abs_rot = np.abs(rot) + _EPS

    # Axes L = A0, A1, A2 (a's face normals).
    for i in range(3):
        ra = ra_ext[i]
        rb = float(rb_ext @ abs_rot[i])
        if abs(t[i]) > ra + rb:
            return False

    # Axes L = B0, B1, B2 (b's face normals).
    for j in range(3):
        ra = float(ra_ext @ abs_rot[:, j])
        rb = rb_ext[j]
        if abs(float(t @ rot[:, j])) > ra + rb:
            return False

    # Axes L = Ai x Bj (9 edge-pair cross products).
    for i in range(3):
        i1, i2 = (i + 1) % 3, (i + 2) % 3
        for j in range(3):
            j1, j2 = (j + 1) % 3, (j + 2) % 3
            ra = ra_ext[i1] * abs_rot[i2, j] + ra_ext[i2] * abs_rot[i1, j]
            rb = rb_ext[j1] * abs_rot[i, j2] + rb_ext[j2] * abs_rot[i, j1]
            dist = abs(t[i2] * rot[i1, j] - t[i1] * rot[i2, j])
            if dist > ra + rb:
                return False
    return True


def _obb_obb_2d(a: OBB, b: OBB) -> bool:
    """4-axis OBB-OBB SAT in 2D (each box contributes 2 face normals)."""
    corners_a = a.corners()
    corners_b = b.corners()
    for axes in (a.rotation.T, b.rotation.T):
        for axis in axes:
            proj_a = corners_a @ axis
            proj_b = corners_b @ axis
            if proj_a.max() < proj_b.min() - _EPS or proj_b.max() < proj_a.min() - _EPS:
                return False
    return True


def sat_axis_count(dim: int, aligned: bool) -> int:
    """Number of candidate separating axes the hardware checker verifies.

    Args:
        dim: workspace dimension (2 or 3).
        aligned: True for the AABB-OBB first-stage format.  The axis count is
            the same, but the per-axis setup is cheaper (no basis change);
            the MAC-cost table in :mod:`repro.core.counters` captures that.
    """
    if dim == 3:
        return 15
    if dim == 2:
        return 4
    raise ValueError(f"unsupported workspace dimension {dim}")
