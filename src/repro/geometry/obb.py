"""Oriented bounding boxes (OBB) in 2D and 3D.

OBBs are MOPED's tight-fitting bounding method (Section II-A).  The hardware
stores a 3D OBB as 15 16-bit values (3 centre + 3 halfwidth + 9 rotation) and
a 2D OBB as 8 values (2 + 2 + 4); Section IV-A.  We mirror that layout in
:meth:`OBB.to_values` / :meth:`OBB.from_values` so the memory model can count
SRAM words exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.rotations import is_rotation_matrix


@dataclass(frozen=True)
class OBB:
    """An oriented box: ``center`` + ``half_extents`` in a rotated frame.

    Attributes:
        center: box centre in world coordinates, shape ``(dim,)``.
        half_extents: positive halfwidths along the box's local axes.
        rotation: ``(dim, dim)`` rotation whose *columns* are the local axes
            expressed in world coordinates.
    """

    center: np.ndarray
    half_extents: np.ndarray
    rotation: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float)
        half = np.asarray(self.half_extents, dtype=float)
        rot = np.asarray(self.rotation, dtype=float)
        dim = center.shape[0]
        if center.ndim != 1 or dim not in (2, 3):
            raise ValueError(f"OBB supports 2D/3D, got center shape {center.shape}")
        if half.shape != (dim,) or np.any(half < 0):
            raise ValueError("half_extents must be non-negative with the same dim as center")
        if rot.shape != (dim, dim):
            raise ValueError(f"rotation must be ({dim},{dim}), got {rot.shape}")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "half_extents", half)
        object.__setattr__(self, "rotation", rot)

    @property
    def dim(self) -> int:
        """Number of spatial dimensions (2 or 3)."""
        return self.center.shape[0]

    @property
    def axes(self) -> np.ndarray:
        """Local axes as columns of the rotation matrix."""
        return self.rotation

    def volume(self) -> float:
        """Hyper-volume of the box."""
        return float(np.prod(2.0 * self.half_extents))

    def corners(self) -> np.ndarray:
        """All 2^dim world-space corner points, shape ``(2**dim, dim)``."""
        dim = self.dim
        out = np.empty((2**dim, dim))
        for i in range(2**dim):
            signs = np.array([1.0 if (i >> d) & 1 else -1.0 for d in range(dim)])
            out[i] = self.center + self.rotation @ (signs * self.half_extents)
        return out

    def to_aabb(self) -> AABB:
        """Tightest AABB containing this OBB.

        This is how MOPED derives the AABB SRAM contents from the OBB-format
        obstacle data received from perception (Section V): the world-frame
        halfwidth along axis *i* is ``sum_j |R[i, j]| * e_j``.
        """
        world_half = np.abs(self.rotation) @ self.half_extents
        return AABB(self.center - world_half, self.center + world_half)

    def contains_point(self, point: np.ndarray) -> bool:
        """Return True when ``point`` is inside or on the boundary."""
        local = self.rotation.T @ (np.asarray(point, dtype=float) - self.center)
        return bool(np.all(np.abs(local) <= self.half_extents + 1e-12))

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> "OBB":
        """Return this OBB rigidly transformed by (rotation, translation).

        Used by the arm forward kinematics to place link-local OBBs in the
        workspace for collision checking.
        """
        rotation = np.asarray(rotation, dtype=float)
        translation = np.asarray(translation, dtype=float)
        return OBB(
            rotation @ self.center + translation,
            self.half_extents,
            rotation @ self.rotation,
        )

    def to_values(self) -> np.ndarray:
        """Flatten to the SRAM word layout of Section IV-A.

        3D: ``[cx, cy, cz, ex, ey, ez, r00..r22]`` (15 values);
        2D: ``[cx, cy, ex, ey, r00, r01, r10, r11]`` (8 values).
        """
        return np.concatenate([self.center, self.half_extents, self.rotation.ravel()])

    @staticmethod
    def from_values(values: Sequence[float], dim: int) -> "OBB":
        """Inverse of :meth:`to_values`."""
        values = np.asarray(values, dtype=float)
        expected = dim + dim + dim * dim
        if values.shape != (expected,):
            raise ValueError(f"expected {expected} values for {dim}D OBB, got {values.shape}")
        return OBB(
            values[:dim],
            values[dim : 2 * dim],
            values[2 * dim :].reshape(dim, dim),
        )

    def is_valid(self) -> bool:
        """Return True when the rotation part is a proper rotation matrix."""
        return is_rotation_matrix(self.rotation, atol=1e-6)


def obb_from_aabb(box: AABB) -> OBB:
    """Represent an AABB as an identity-rotation OBB."""
    return OBB(box.center, box.half_extents, np.eye(box.dim))
