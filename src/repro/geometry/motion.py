"""Swept-movement discretisation for collision checking.

RRT\\* must verify that a planned movement is collision free *during the
entire movement course* (Section II-C), not just at its endpoints.  Like the
paper's checker, we discretise the configuration-space segment between two
configurations at a fixed resolution and check the robot's body boxes at
every intermediate configuration.
"""

from __future__ import annotations

import math

import numpy as np


def motion_steps(start: np.ndarray, end: np.ndarray, resolution: float) -> int:
    """Number of intermediate configurations for a movement check.

    The count is ``ceil(||end - start|| / resolution)`` with a minimum of 1,
    so even a zero-length movement is checked once (at the endpoint).
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    dist = float(np.linalg.norm(end - start))
    return max(1, int(math.ceil(dist / resolution)))


def interpolate_configs(start: np.ndarray, end: np.ndarray, resolution: float) -> np.ndarray:
    """Configurations along the straight C-space segment from start to end.

    Returns ``(k, dim)`` with ``k = motion_steps(...) + 1`` rows including
    both endpoints.  The checker walks these from the ``start`` side so that
    collisions near the tree are detected after the fewest checks.
    """
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    if start.shape != end.shape:
        raise ValueError("configuration shapes must match")
    steps = motion_steps(start, end, resolution)
    fractions = np.linspace(0.0, 1.0, steps + 1)
    return start[None, :] + fractions[:, None] * (end - start)[None, :]
