"""Swept-movement discretisation for collision checking.

RRT\\* must verify that a planned movement is collision free *during the
entire movement course* (Section II-C), not just at its endpoints.  Like the
paper's checker, we discretise the configuration-space segment between two
configurations at a fixed resolution and check the robot's body boxes at
every intermediate configuration.

The planner issues one motion check per sampling round (plus one per
choose-parent / rewire candidate), and the steering step bounds segment
lengths, so the same waypoint counts recur constantly.  The interpolation
parameters for a given step count are therefore computed once and cached
(:func:`unit_fractions`); the arrays are marked read-only so a cached row
can never be corrupted by a caller.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np


def motion_steps(start: np.ndarray, end: np.ndarray, resolution: float) -> int:
    """Number of intermediate configurations for a movement check.

    The count is ``ceil(||end - start|| / resolution)`` with a minimum of 1,
    so even a zero-length movement is checked once (at the endpoint).
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    dist = float(np.linalg.norm(end - start))
    return max(1, int(math.ceil(dist / resolution)))


@lru_cache(maxsize=512)
def unit_fractions(steps: int) -> np.ndarray:
    """Cached ``linspace(0, 1, steps + 1)`` for a movement of ``steps`` steps.

    Returned arrays are shared across calls and frozen read-only.
    """
    fractions = np.linspace(0.0, 1.0, steps + 1)
    fractions.flags.writeable = False
    return fractions


def interpolate_configs(start: np.ndarray, end: np.ndarray, resolution: float) -> np.ndarray:
    """Configurations along the straight C-space segment from start to end.

    Returns ``(k, dim)`` with ``k = motion_steps(...) + 1`` rows including
    both endpoints.  The checker walks these from the ``start`` side so that
    collisions near the tree are detected after the fewest checks.
    """
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    if start.shape != end.shape:
        raise ValueError("configuration shapes must match")
    steps = motion_steps(start, end, resolution)
    fractions = unit_fractions(steps)
    return start[None, :] + fractions[:, None] * (end - start)[None, :]
