"""Swept-movement discretisation for collision checking.

RRT\\* must verify that a planned movement is collision free *during the
entire movement course* (Section II-C), not just at its endpoints.  Like the
paper's checker, we discretise the configuration-space segment between two
configurations at a fixed resolution and check the robot's body boxes at
every intermediate configuration.

The planner issues one motion check per sampling round (plus one per
choose-parent / rewire candidate), and the steering step bounds segment
lengths, so the same waypoint counts recur constantly.  The interpolation
parameters for a given step count are therefore computed once and cached
(:func:`unit_fractions`); the arrays are marked read-only so a cached row
can never be corrupted by a caller.  Step counts beyond
:data:`UNIT_FRACTION_CACHE_MAX_STEPS` bypass the cache entirely: ladders
that long come from one-off workspace-scale probes, and letting them into
the LRU would thrash out the small recurring planner entries.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

#: Largest step count whose fraction ladder is memoised.  Steered planner
#: edges sit far below this (a few waypoints at ``step / 4`` resolution);
#: anything larger is an unbounded ad-hoc query whose ladder is computed
#: fresh so it can never evict the hot entries.
UNIT_FRACTION_CACHE_MAX_STEPS = 4096


def motion_steps(start: np.ndarray, end: np.ndarray, resolution: float) -> int:
    """Number of intermediate configurations for a movement check.

    The count is ``ceil(||end - start|| / resolution)`` with a minimum of 1,
    so even a zero-length movement is checked once (at the endpoint).
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    dist = float(np.linalg.norm(end - start))
    return max(1, int(math.ceil(dist / resolution)))


@lru_cache(maxsize=512)
def _cached_unit_fractions(steps: int) -> np.ndarray:
    fractions = np.linspace(0.0, 1.0, steps + 1)
    fractions.flags.writeable = False
    return fractions


def unit_fractions(steps: int) -> np.ndarray:
    """``linspace(0, 1, steps + 1)`` for a movement of ``steps`` steps.

    Step counts up to :data:`UNIT_FRACTION_CACHE_MAX_STEPS` share cached
    arrays across calls; longer ladders are computed fresh.  Either way the
    returned array is frozen read-only and its values are exactly what an
    uncached ``np.linspace`` call produces.
    """
    if steps <= UNIT_FRACTION_CACHE_MAX_STEPS:
        return _cached_unit_fractions(steps)
    fractions = np.linspace(0.0, 1.0, steps + 1)
    fractions.flags.writeable = False
    return fractions


def unit_fractions_cache_info():
    """``functools.lru_cache`` statistics of the fraction-ladder cache."""
    return _cached_unit_fractions.cache_info()


def interpolate_configs(start: np.ndarray, end: np.ndarray, resolution: float) -> np.ndarray:
    """Configurations along the straight C-space segment from start to end.

    Returns ``(k, dim)`` with ``k = motion_steps(...) + 1`` rows including
    both endpoints.  The checker walks these from the ``start`` side so that
    collisions near the tree are detected after the fewest checks.
    """
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    if start.shape != end.shape:
        raise ValueError("configuration shapes must match")
    steps = motion_steps(start, end, resolution)
    fractions = unit_fractions(steps)
    return start[None, :] + fractions[:, None] * (end - start)[None, :]


def interpolate_edges(starts: np.ndarray, ends: np.ndarray, resolution: float):
    """Concatenated interpolation ladders for a whole batch of movements.

    Returns ``(configs, offsets)`` where ``configs[offsets[e]:offsets[e+1]]``
    is edge ``e``'s ladder and equals ``interpolate_configs(starts[e],
    ends[e], resolution)`` bit-for-bit.  Step counts use the exact
    :func:`motion_steps` arithmetic per edge (so ulp behaviour matches the
    scalar path); the row construction itself is one vectorized
    multiply-add over the stacked fractions — no per-row Python.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.shape != ends.shape or starts.ndim != 2:
        raise ValueError("starts and ends must be matching (edges, dof) arrays")
    edges = len(starts)
    counts = [motion_steps(starts[e], ends[e], resolution) + 1 for e in range(edges)]
    offsets = np.zeros(edges + 1, dtype=np.intp)
    if not edges:
        return np.empty((0, starts.shape[1])), offsets
    np.cumsum(counts, out=offsets[1:])
    fractions = np.concatenate([unit_fractions(c - 1) for c in counts])
    configs = np.repeat(starts, counts, axis=0) + fractions[:, None] * np.repeat(
        ends - starts, counts, axis=0
    )
    return configs, offsets
