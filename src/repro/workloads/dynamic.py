"""Dynamic environments: moving obstacles and replanning scenarios.

Section VI contrasts MOPED with accelerators that bake the environment into
their state: the MICRO'16 precomputed-collision design "needs hours of
offline reset if obstacles change", and CODAcc's occupancy grid must be
re-rasterised.  MOPED only needs its obstacle R-tree rebuilt — an STR bulk
load over a few dozen boxes.  This module provides moving-obstacle
scenarios so the replanning loop (:mod:`repro.core.replan`) and the
environment-prep cost comparison can exercise that difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.world import Environment
from repro.geometry.obb import OBB


@dataclass(frozen=True)
class MovingObstacle:
    """An OBB translating at constant velocity, bouncing off the walls.

    Attributes:
        obb: the obstacle geometry at ``t = 0``.
        velocity: workspace-units per unit time, shape ``(dim,)``.
    """

    obb: OBB
    velocity: np.ndarray

    def __post_init__(self) -> None:
        velocity = np.asarray(self.velocity, dtype=float)
        if velocity.shape != (self.obb.dim,):
            raise ValueError(
                f"velocity must be {self.obb.dim}-dimensional, got {velocity.shape}"
            )
        object.__setattr__(self, "velocity", velocity)

    def at(self, t: float, size: float) -> OBB:
        """Obstacle pose at time ``t``, reflecting at the workspace walls.

        The centre follows a triangle wave per axis so obstacles stay inside
        the workspace for all ``t``.
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        margin = float(np.max(self.obb.half_extents))
        span = size - 2.0 * margin
        if span <= 0:
            return self.obb
        raw = self.obb.center + self.velocity * t - margin
        # Triangle-wave fold into [0, span].
        period = 2.0 * span
        folded = np.abs(np.mod(raw, period) - span)
        folded = span - folded
        center = folded + margin
        return OBB(center, self.obb.half_extents, self.obb.rotation)


@dataclass(frozen=True)
class DynamicScenario:
    """A workspace whose obstacles move over time."""

    workspace_dim: int
    size: float
    obstacles: tuple

    def __init__(self, workspace_dim: int, size: float, obstacles: Sequence[MovingObstacle]):
        if workspace_dim not in (2, 3):
            raise ValueError("workspace_dim must be 2 or 3")
        for moving in obstacles:
            if moving.obb.dim != workspace_dim:
                raise ValueError("obstacle dim mismatch")
        object.__setattr__(self, "workspace_dim", workspace_dim)
        object.__setattr__(self, "size", float(size))
        object.__setattr__(self, "obstacles", tuple(obstacles))

    def environment_at(self, t: float) -> Environment:
        """Static snapshot of the workspace at time ``t``."""
        return Environment(
            self.workspace_dim,
            self.size,
            [moving.at(t, self.size) for moving in self.obstacles],
        )


def random_dynamic_scenario(
    workspace_dim: int,
    num_obstacles: int,
    seed: int = 0,
    size: float = 300.0,
    max_speed: float = 10.0,
) -> DynamicScenario:
    """A scenario with randomly placed, randomly drifting obstacles."""
    from repro.workloads.generator import random_environment

    static = random_environment(workspace_dim, num_obstacles, seed=seed, size=size)
    rng = np.random.default_rng(seed + 4242)
    moving = [
        MovingObstacle(obb, rng.uniform(-max_speed, max_speed, workspace_dim))
        for obb in static.obstacles
    ]
    return DynamicScenario(workspace_dim, size, moving)
