"""Named traffic mixes: weighted scenario populations for load generation.

The network traffic harness (:mod:`repro.net.traffic`) does not invent its
own workloads — it draws from these mixes, which are built on the same
generator knobs as :func:`repro.workloads.random_task`.  A mix is a list
of weighted entries; each entry is a partial request *spec* (the compact
``POST /plan`` form of :mod:`repro.net.wire`) plus a ``seed_pool`` size.
Drawing a scenario picks an entry by weight and a seed uniformly from
``[spec_seed_base, spec_seed_base + seed_pool)``, so the pool size is the
knob for cache-hit potential: a pool of 16 seeds under sustained load
converges to ~100% plan-cache hits after 16 distinct plans, while a huge
pool keeps the tier cold.

Draws are deterministic given the generator's RNG, so two harness runs
with the same ``--seed`` offer byte-identical request streams.
"""

from __future__ import annotations

import random
from typing import Dict, List

__all__ = ["TRAFFIC_MIXES", "draw_spec", "mix_names"]

#: Named mixes.  ``weight`` sets the draw probability (normalised over the
#: mix); ``spec`` is merged into the wire spec; ``seed_pool`` bounds the
#: distinct-task population of the entry.
TRAFFIC_MIXES: Dict[str, List[Dict]] = {
    # Tiny tasks, small seed pool: high cache-hit steady state.  The
    # default for smoke tests and the demo command.
    "smoke": [
        {"weight": 1.0, "seed_pool": 16,
         "spec": {"robot": "mobile2d", "obstacles": 8, "samples": 120}},
    ],
    # One entry, one seed per request (pool ~ unbounded): every request
    # plans.  Measures raw serving capacity, not cache performance.
    "cold": [
        {"weight": 1.0, "seed_pool": 1_000_000,
         "spec": {"robot": "mobile2d", "obstacles": 8, "samples": 120}},
    ],
    # Heterogeneous population: mostly light 2D tasks, some mid-weight 3D,
    # a trickle of heavy arm planning — the long-tail shape that makes
    # percentile reports interesting.
    "mixed": [
        {"weight": 0.6, "seed_pool": 32,
         "spec": {"robot": "mobile2d", "obstacles": 8, "samples": 150}},
        {"weight": 0.3, "seed_pool": 16,
         "spec": {"robot": "drone3d", "obstacles": 8, "samples": 150}},
        {"weight": 0.1, "seed_pool": 8,
         "spec": {"robot": "viperx300", "obstacles": 4, "samples": 100}},
    ],
    # Anytime-planning mix: heavier sampling budgets under a deadline, so
    # a fraction of responses come back ``status="degraded"`` and the
    # harness exercises the degraded wire path end to end.
    "deadline": [
        {"weight": 1.0, "seed_pool": 32,
         "spec": {"robot": "mobile2d", "obstacles": 16, "samples": 4000,
                  "deadline_s": 0.05}},
    ],
}


def mix_names() -> List[str]:
    return sorted(TRAFFIC_MIXES)


def draw_spec(mix: str, rng: random.Random, seed_base: int = 0) -> Dict:
    """One request spec drawn from ``mix`` using ``rng``.

    The returned dict is a complete wire spec (entry spec + drawn seed)
    ready to ship as ``{"spec": ...}`` in a ``POST /plan`` body.
    """
    entries = TRAFFIC_MIXES.get(mix)
    if not entries:
        raise ValueError(f"unknown traffic mix {mix!r}; known: {mix_names()}")
    weights = [entry["weight"] for entry in entries]
    entry = rng.choices(entries, weights=weights, k=1)[0]
    spec = dict(entry["spec"])
    spec["seed"] = seed_base + rng.randrange(entry["seed_pool"])
    return spec
