"""Random environments and planning tasks (Section V, Environmental Settings).

The paper evaluates in a 300x300(x300) workspace with 8/16/32/48 obstacles of
random shape (3D size up to 30x30x50, 2D up to 30x30), random location and
random orientation; 50 planning tasks per configuration with random start and
goal configurations.  This module reproduces that protocol with seeded
generators so every benchmark run is repeatable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.collision import BruteOBBChecker
from repro.core.robots import RobotModel, get_robot, WORKSPACE_SIZE
from repro.core.world import Environment, PlanningTask
from repro.geometry.obb import OBB
from repro.geometry.rotations import random_rotation_2d, random_rotation_3d

OBSTACLE_COUNTS = (8, 16, 32, 48)

# Paper limits: 3D obstacles up to 30x30x50, 2D up to 30x30 (full side lengths).
_MAX_HALF_3D = np.array([15.0, 15.0, 25.0])
_MAX_HALF_2D = np.array([15.0, 15.0])
_MIN_HALF = 2.5


def random_environment(
    workspace_dim: int,
    num_obstacles: int,
    seed: int = 0,
    size: float = WORKSPACE_SIZE,
    clear_center: Optional[np.ndarray] = None,
    clear_radius: float = 0.0,
) -> Environment:
    """Generate a workspace with randomly placed OBB obstacles.

    Args:
        workspace_dim: 2 or 3.
        num_obstacles: obstacle count (the paper sweeps 8/16/32/48).
        seed: RNG seed.
        size: workspace side length.
        clear_center / clear_radius: optionally keep a sphere free of
            obstacle centres (used to protect an arm's base region).
    """
    if workspace_dim not in (2, 3):
        raise ValueError("workspace_dim must be 2 or 3")
    if num_obstacles < 0:
        raise ValueError("num_obstacles must be >= 0")
    rng = np.random.default_rng(seed)
    max_half = _MAX_HALF_3D if workspace_dim == 3 else _MAX_HALF_2D
    obstacles: List[OBB] = []
    while len(obstacles) < num_obstacles:
        half = rng.uniform(_MIN_HALF, max_half)
        margin = float(np.max(half))
        center = rng.uniform(margin, size - margin, workspace_dim)
        if clear_center is not None and clear_radius > 0.0:
            if float(np.linalg.norm(center - clear_center)) < clear_radius:
                continue
        rotation = (
            random_rotation_3d(rng) if workspace_dim == 3 else random_rotation_2d(rng)
        )
        obstacles.append(OBB(center, half, rotation))
    return Environment(workspace_dim, size, obstacles)


def narrow_passage_environment(
    workspace_dim: int = 2,
    gap: float = 24.0,
    size: float = WORKSPACE_SIZE,
    bar_half_width: float = 5.0,
    bar_half_length: float = 95.0,
) -> Environment:
    """A diagonal channel between two 45-degree bars (the Fig 5 scenario).

    Two long thin bars, both rotated 45 degrees, run parallel along the
    workspace diagonal with a channel of width ``gap`` between them.  The
    channel is genuinely passable — but each bar's AABB is a huge square
    (a 45-degree rotation maximises AABB over-approximation), and the two
    AABBs overlap the channel completely.  An AABB-based checker therefore
    reports the direct route blocked and must detour around the bar ends
    (longer path) or fail outright, while the exact OBB second stage plans
    straight through: Fig 5's lower-path-cost / higher-success effect.
    """
    if gap <= 0 or gap >= size:
        raise ValueError("gap must be inside (0, size)")
    import math

    mid = size / 2.0
    # Perpendicular offset of each bar axis from the diagonal.
    offset = (gap / 2.0 + bar_half_width) / math.sqrt(2.0)
    obstacles = []
    if workspace_dim == 2:
        from repro.geometry.rotations import rotation_2d

        rot = rotation_2d(math.pi / 4.0)
        half = np.array([bar_half_length, bar_half_width])
        for sign in (+1.0, -1.0):
            center = np.array([mid + sign * offset, mid - sign * offset])
            obstacles.append(OBB(center, half, rot))
    else:
        from repro.geometry.rotations import rotation_from_euler

        rot = rotation_from_euler(math.pi / 4.0)
        half = np.array([bar_half_length, bar_half_width, size / 2.0 - 1.0])
        for sign in (+1.0, -1.0):
            center = np.array([mid + sign * offset, mid - sign * offset, mid])
            obstacles.append(OBB(center, half, rot))
    return Environment(workspace_dim, size, obstacles)


def random_start_goal(
    robot: RobotModel,
    environment: Environment,
    rng: np.random.Generator,
    min_separation: Optional[float] = None,
    max_tries: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a collision-free, well-separated start/goal pair.

    Raises RuntimeError when no valid pair is found within ``max_tries``
    (e.g. an environment so dense the robot cannot stand anywhere).
    """
    checker = BruteOBBChecker(robot, environment, motion_resolution=robot.step_size)
    if min_separation is None:
        span = float(np.linalg.norm(robot.config_hi - robot.config_lo))
        min_separation = 0.25 * span

    def sample_free() -> Optional[np.ndarray]:
        for _ in range(max_tries):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            if not checker.config_in_collision(config):
                return config
        return None

    start = sample_free()
    if start is None:
        raise RuntimeError(f"no collision-free start found for {robot.name}")
    for _ in range(max_tries):
        goal = sample_free()
        if goal is None:
            break
        if float(np.linalg.norm(goal - start)) >= min_separation:
            return start, goal
    raise RuntimeError(f"no valid start/goal pair found for {robot.name}")


def random_task(
    robot_name: str,
    num_obstacles: int,
    seed: int = 0,
    task_id: int = 0,
) -> PlanningTask:
    """One seeded planning task following the Section V protocol."""
    robot = get_robot(robot_name)
    clear_center = None
    clear_radius = 0.0
    if robot.workspace_dim == 3 and robot.dof in (5, 6, 7) and robot.name != "drone3d":
        # Keep the arm's base area free so tasks are usually feasible.
        clear_center = np.array([WORKSPACE_SIZE / 2, WORKSPACE_SIZE / 2, 20.0])
        clear_radius = 45.0
    environment = random_environment(
        robot.workspace_dim,
        num_obstacles,
        seed=seed,
        clear_center=clear_center,
        clear_radius=clear_radius,
    )
    rng = np.random.default_rng(seed + 7919 * (task_id + 1))
    start, goal = random_start_goal(robot, environment, rng)
    return PlanningTask(
        robot_name=robot_name,
        environment=environment,
        start=start,
        goal=goal,
        task_id=task_id,
    )


def task_suite(
    robot_name: str,
    num_obstacles: int,
    num_tasks: int,
    seed: int = 0,
) -> List[PlanningTask]:
    """A suite of seeded tasks (the paper uses 50 per configuration)."""
    return [
        random_task(robot_name, num_obstacles, seed=seed + i, task_id=i)
        for i in range(num_tasks)
    ]
