"""Workload generation: the Section V evaluation environments and tasks."""

from repro.workloads.dynamic import (
    DynamicScenario,
    MovingObstacle,
    random_dynamic_scenario,
)
from repro.workloads.generator import (
    OBSTACLE_COUNTS,
    random_environment,
    random_start_goal,
    random_task,
    task_suite,
    narrow_passage_environment,
)
from repro.workloads.mixes import TRAFFIC_MIXES, draw_spec, mix_names

__all__ = [
    "DynamicScenario",
    "MovingObstacle",
    "OBSTACLE_COUNTS",
    "TRAFFIC_MIXES",
    "draw_spec",
    "mix_names",
    "random_dynamic_scenario",
    "narrow_passage_environment",
    "random_environment",
    "random_start_goal",
    "random_task",
    "task_suite",
]
