"""Structured error taxonomy for the planning engine and service.

Every failure mode the stack can produce maps to one exception class with a
stable ``status`` string, replacing the ad-hoc status strings that used to
be scattered through the service layer.  The hierarchy mirrors MOPED's
speculate-and-repair discipline at the system level: faults are *detected
and classified*, never trusted or silently swallowed — a crashed worker, an
expired deadline, and a malformed request are different events with
different retry semantics, and the class encodes which is which.

Two deliberate base-class choices keep the taxonomy drop-in compatible:

* :class:`InvalidRequest` also subclasses :class:`ValueError`, so callers
  (and tests) that guarded input errors with ``except ValueError`` keep
  working unchanged;
* :class:`FaultInjected` also subclasses :class:`RuntimeError`, so an
  injected transient fault propagates through code that treats planner
  exceptions generically.

``RETRYABLE`` records which terminal statuses the pool may retry by
default; the mapping is advisory (``PoolConfig.retry_statuses`` remains the
authority) but keeps the taxonomy and the scheduler in one conversation.
"""

from __future__ import annotations

from typing import Dict, Optional, Type


class PlanningError(Exception):
    """Base class of every structured planning/service failure.

    Attributes:
        status: the terminal status string the failure maps to on the
            service wire format (one of :data:`repro.service.request.STATUSES`).
    """

    status = "error"


class InvalidRequest(PlanningError, ValueError):
    """The request itself is malformed: NaN/inf configurations, start or
    goal outside the robot's configuration-space bounds, non-finite
    obstacle geometry, or an unknown robot.  Never retried — the same
    request fails the same way forever."""

    status = "invalid"


class DeadlineExceeded(PlanningError):
    """A deadline or operation budget expired before planning completed.

    The planner itself does not *raise* this — an expired budget degrades
    gracefully to a best-so-far result (``status="degraded"``) — but
    callers that require a complete result can raise it when they receive
    a degraded one."""

    status = "degraded"


class WorkerCrash(PlanningError):
    """A worker process died mid-job (pipe EOF, corrupted payload, or an
    injected crash).  Retryable: the crash may be the worker's fault, not
    the job's."""

    status = "crash"


class WorkerTimeout(PlanningError):
    """A job exceeded its per-job wall budget and its worker was killed.
    Not retried by default — a job that blew the budget once will blow it
    again."""

    status = "timeout"


class PoisonJob(PlanningError):
    """A job crashed ``poison_threshold`` workers and was quarantined in
    the dead-letter list instead of being retried forever.  Terminal."""

    status = "poison"


class CircuitOpen(PlanningError):
    """The pool's circuit breaker is open: too many consecutive worker
    failures.  Dispatch pauses for the cooldown instead of feeding more
    jobs into a sick pool."""

    status = "breaker_open"


class FaultInjected(PlanningError, RuntimeError):
    """An error deliberately raised by the fault-injection layer
    (:mod:`repro.faults`) at a named site.  Classified as a transient
    ``"error"`` so the retry machinery exercises the same path a real
    transient exception would take."""

    status = "error"


#: status string -> exception class (the inverse of the ``status`` attrs).
ERROR_CLASSES: Dict[str, Type[PlanningError]] = {
    "invalid": InvalidRequest,
    "degraded": DeadlineExceeded,
    "crash": WorkerCrash,
    "timeout": WorkerTimeout,
    "poison": PoisonJob,
    "error": PlanningError,
}

#: Statuses the pool retries by default.  Timeouts are excluded (see
#: :class:`WorkerTimeout`); invalid/poison/degraded are terminal by nature.
RETRYABLE = ("crash", "error")


def error_for_status(status: str, message: str = "") -> Optional[PlanningError]:
    """Instantiate the taxonomy class for a terminal failure ``status``.

    Returns ``None`` for ``"ok"`` (not an error); unknown statuses map to
    the :class:`PlanningError` base so callers never KeyError on a status
    added by a newer wire peer.
    """
    if status == "ok":
        return None
    cls = ERROR_CLASSES.get(status, PlanningError)
    return cls(message or status)
