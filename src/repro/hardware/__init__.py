"""Hardware models: the MOPED accelerator and its Section V-B baselines.

* :class:`~repro.hardware.engine.MopedAccelerator` — the Fig 11 engine with
  speculate-and-repair pipelining and three-level caching.
* :mod:`repro.hardware.baselines` — CPU, RRT\\* ASIC, RRT\\* ASIC + CODAcc.
* :mod:`repro.hardware.params` — the 28 nm design point (168 MACs, 198 KB
  SRAM, 0.62 mm^2, 137.5 mW @ 1 GHz) and baseline platform parameters.
"""

from repro.hardware.baselines import (
    asic_report,
    codacc_report,
    cpu_report,
    run_asic_baseline,
    run_codacc_baseline,
    run_cpu_baseline,
)
from repro.hardware.conflict import ConflictReport, analyze_bank_conflicts
from repro.hardware.engine import HardwareRunResult, MopedAccelerator
from repro.hardware.eventsim import EventSimResult, MopedEventSimulator, format_timeline
from repro.hardware.memory import CacheReport, LRUCache, MemorySystem, SRAMBank
from repro.hardware.params import (
    AsicParams,
    CodaccParams,
    CpuParams,
    MopedHardwareParams,
    SRAM_BANKS_KB,
    sram_access_energy_j,
)
from repro.hardware.pipeline import (
    PipelineReport,
    serialized_latency_cycles,
    snr_latency_cycles,
)
from repro.hardware.report import PerfReport, format_comparison
from repro.hardware.technology import TechnologyModel, consistency_report

__all__ = [
    "AsicParams",
    "asic_report",
    "codacc_report",
    "cpu_report",
    "CacheReport",
    "ConflictReport",
    "analyze_bank_conflicts",
    "CodaccParams",
    "CpuParams",
    "EventSimResult",
    "HardwareRunResult",
    "MopedEventSimulator",
    "format_timeline",
    "LRUCache",
    "MemorySystem",
    "MopedAccelerator",
    "MopedHardwareParams",
    "PerfReport",
    "PipelineReport",
    "SRAMBank",
    "TechnologyModel",
    "consistency_report",
    "SRAM_BANKS_KB",
    "format_comparison",
    "run_asic_baseline",
    "run_codacc_baseline",
    "run_cpu_baseline",
    "serialized_latency_cycles",
    "snr_latency_cycles",
    "sram_access_energy_j",
]
