"""Memory bank-conflict analysis: quantifying Section IV-C's claim.

The paper motivates the module- and engine-level caches with *resource
conflict*: the Bottom NS SRAM is hammered by the speculative neighbor
search while the tree operator updates the same nodes, and the refinement
module would re-read the identified neighborhood — "severe memory access
conflict may occur".

This model makes the claim measurable with a roofline-style bottleneck
analysis.  Every round's operation events imply word traffic on each SRAM
bank (derived from the Section IV-A record layouts).  A single-ported bank
serves ``port_words`` 16-bit words per cycle, so per round each bank needs
``words / port_words`` cycles.  The round's memory-bound time is the
busiest bank; its compute-bound time comes from the unit MAC loads.  When
the busiest bank exceeds the compute time, the difference is a *conflict
stall* — the quantity the caches remove by redirecting traffic to private
buffers.

Cache redirection (``caches_enabled=True``) models the three levels of
Section IV-C: the unit-level Top NS Cache absorbs ``top_hit_rate`` of
MBR reads, the module-level trace cache absorbs the insertion/speculation
re-reads, and the engine-level neighborhood cache absorbs refinement's
neighborhood reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.metrics import RoundRecord
from repro.hardware.params import MopedHardwareParams

# 16-bit words moved per event, by (kind, bank); d = DoF, w = workspace dim.
# Derived from the Section IV-A record layouts.


def _words_per_event(kind: str, dof: int, workspace_dim: int) -> Dict[str, int]:
    obb_words = 15 if workspace_dim == 3 else 8
    aabb_words = 6 if workspace_dim == 3 else 4
    table = {
        "dist": {"bottom_ns": dof},
        "mindist": {"bottom_ns": 2 * dof},
        "buffer_read": {},  # served by the missing-neighbor buffer
        "plane_compare": {"bottom_ns": 1},
        "rebuild_item": {"bottom_ns": dof},
        "sat_obb_obb": {"obstacle_obb": obb_words},
        "sat_aabb_obb": {"obstacle_aabb": aabb_words},
        "sat_aabb_aabb": {"obstacle_aabb": aabb_words},
        "aabb_derive": {},
        "grid_lookup": {"obstacle_aabb": 1},
        "enlargement": {"bottom_ns": 2 * dof},
        "mbr_update": {"bottom_ns": 2 * dof},
        "insert_direct": {"bottom_ns": 2 * dof},
        "split": {"bottom_ns": 4 * dof},
        "cost_update": {"exp_struct": 2},
        "sample": {},
        "steer": {"exp_node": dof},
        "fifo_op": {},
    }
    return table.get(kind, {})


@dataclass
class ConflictReport:
    """Bank pressure and stall accounting for one planning run.

    Attributes:
        bank_cycles: total access cycles demanded per bank.
        compute_cycles: total compute-bound cycles across rounds.
        stall_cycles: cycles where the busiest bank exceeded compute.
        bottleneck_bank: the bank responsible for most stalls.
    """

    bank_cycles: Dict[str, float]
    compute_cycles: float
    stall_cycles: float
    bottleneck_bank: str

    @property
    def stall_fraction(self) -> float:
        total = self.compute_cycles + self.stall_cycles
        return self.stall_cycles / total if total > 0 else 0.0


def analyze_bank_conflicts(
    rounds: Sequence[RoundRecord],
    dof: int,
    workspace_dim: int,
    params: Optional[MopedHardwareParams] = None,
    caches_enabled: bool = True,
    top_hit_rate: float = 0.85,
    port_words: int = 16,
    replication: Optional[Dict[str, int]] = None,
) -> ConflictReport:
    """Roofline bank-conflict analysis over a run's round records.

    Args:
        rounds: per-round telemetry (must carry ``events``).
        dof / workspace_dim: the robot's dimensions (record layouts).
        params: hardware design point (unit MAC widths).
        caches_enabled: redirect traffic per the Section IV-C hierarchy.
        top_hit_rate: fraction of SI-MBR MBR reads served by the Top NS
            Cache when caches are enabled (measure with
            :class:`~repro.hardware.memory.MemorySystem` for exact rates).
        port_words: 16-bit words a bank port delivers per cycle (one SRAM
            row; records are row-aligned).
        replication: per-bank copy counts.  The small read-only obstacle
            banks are cheap to replicate so parallel SAT lanes can stream
            them; defaults to 4x for the AABB bank and 2x for the OBB bank.
    """
    if params is None:
        params = MopedHardwareParams()
    if not 0.0 <= top_hit_rate <= 1.0:
        raise ValueError("top_hit_rate must be in [0, 1]")
    if port_words < 1:
        raise ValueError("port_words must be >= 1")
    if replication is None:
        replication = {"obstacle_aabb": 4, "obstacle_obb": 2}

    bank_cycles: Dict[str, float] = {}
    compute_total = 0.0
    stall_total = 0.0
    bank_stalls: Dict[str, float] = {}

    for record in rounds:
        events = record.events or {}
        round_banks: Dict[str, float] = {}
        for kind, count in events.items():
            words = _words_per_event(kind, dof, workspace_dim)
            for bank, per_event in words.items():
                traffic = count * per_event
                if caches_enabled and bank == "bottom_ns" and kind in (
                    "dist", "mindist", "plane_compare"
                ):
                    # Unit-level cache absorbs the hot top of the tree.
                    cached = traffic * top_hit_rate
                    round_banks["top_ns_cache"] = (
                        round_banks.get("top_ns_cache", 0.0) + cached / port_words
                    )
                    traffic -= cached
                if caches_enabled and bank == "bottom_ns" and kind in (
                    "insert_direct", "mbr_update", "split", "enlargement"
                ):
                    # Module-level trace cache holds the last search's nodes,
                    # which are exactly the ones insertion touches.
                    round_banks["trace_cache"] = (
                        round_banks.get("trace_cache", 0.0) + traffic / port_words
                    )
                    continue
                copies = replication.get(bank, 1)
                round_banks[bank] = (
                    round_banks.get(bank, 0.0) + traffic / port_words / copies
                )
        if caches_enabled and record.accepted:
            # Engine-level cache: refinement reads the neighborhood from the
            # cache instead of Bottom NS SRAM (8 entries x dof words).
            round_banks["neighbor_cache"] = (
                round_banks.get("neighbor_cache", 0.0) + 8 * dof / port_words
            )
        elif record.accepted:
            round_banks["bottom_ns"] = (
                round_banks.get("bottom_ns", 0.0) + 8 * dof / port_words
            )

        compute = (
            record.ns_macs / params.ns_unit_macs
            + record.cc_macs / params.cc_unit_macs
            + record.maint_macs / params.tree_op_macs
            + record.other_macs / params.refine_unit_macs
        )
        compute_total += compute
        # Private cache buffers are multi-ported; only the big shared SRAM
        # banks can stall the datapath.
        shared = {
            bank: cycles
            for bank, cycles in round_banks.items()
            if bank in ("bottom_ns", "exp_node", "obstacle_obb", "obstacle_aabb", "exp_struct")
        }
        busiest = max(shared.values(), default=0.0)
        stall = max(0.0, busiest - compute)
        stall_total += stall
        if stall > 0:
            bank = max(shared, key=shared.get)
            bank_stalls[bank] = bank_stalls.get(bank, 0.0) + stall
        for bank, cycles in round_banks.items():
            bank_cycles[bank] = bank_cycles.get(bank, 0.0) + cycles

    bottleneck = max(bank_stalls, key=bank_stalls.get) if bank_stalls else "none"
    return ConflictReport(
        bank_cycles=bank_cycles,
        compute_cycles=compute_total,
        stall_cycles=stall_total,
        bottleneck_bank=bottleneck,
    )
