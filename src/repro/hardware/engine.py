"""The MOPED accelerator model: Fig 11's engine, end to end.

:class:`MopedAccelerator` executes a planning task exactly as the hardware
would — the MOPED algorithm (two-stage collision check, SI-MBR-Tree search,
approximated neighborhoods, O(1) insertion) with the LFSR sampler — while

* replaying real SI-MBR-Tree access traces through the three-level cache
  hierarchy (:mod:`repro.hardware.memory`),
* scheduling every round's unit loads through the speculate-and-repair
  pipeline (:mod:`repro.hardware.pipeline`), and
* accounting datapath + SRAM energy at the Section V-B design point.

``enable_snr=False`` and ``enable_caches=False`` expose the two hardware
ablations (Fig 17 and the Section IV-C discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PlannerConfig, moped_config
from repro.core.counters import OpCounter
from repro.core.metrics import PlanResult
from repro.core.neighbors import SIMBRStrategy
from repro.core.robots import RobotModel
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask
from repro.hardware.memory import CacheReport, MemorySystem
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import PipelineReport, snr_latency_cycles
from repro.hardware.report import PerfReport


@dataclass
class HardwareRunResult:
    """Everything one accelerated planning run produced."""

    plan: PlanResult
    pipeline: PipelineReport
    cache: CacheReport
    perf: PerfReport

    @property
    def latency_ms(self) -> float:
        return self.perf.latency_s * 1e3


class MopedAccelerator:
    """Functional + timing model of the MOPED hardware engine."""

    def __init__(
        self,
        params: Optional[MopedHardwareParams] = None,
        enable_snr: bool = True,
        enable_caches: bool = True,
        top_cache_nodes: int = 256,
    ):
        self.params = params if params is not None else MopedHardwareParams()
        self.enable_snr = enable_snr
        self.enable_caches = enable_caches
        self.top_cache_nodes = top_cache_nodes

    def run(
        self,
        robot: RobotModel,
        task: PlanningTask,
        config: Optional[PlannerConfig] = None,
    ) -> HardwareRunResult:
        """Execute ``task`` on the modelled accelerator."""
        if config is None:
            config = moped_config("v4", sampler="lfsr")
        planner = RRTStarPlanner(robot, task, config)
        memory = MemorySystem(
            robot.dof,
            top_cache_nodes=self.top_cache_nodes,
            enable_caches=self.enable_caches,
        )
        self._attach_memory(planner, memory)
        plan = planner.plan()
        self._replay_counter_traffic(plan, memory, robot)
        pipeline = snr_latency_cycles(plan.rounds, self.params)
        cache = memory.report()
        perf = self._perf(plan, pipeline, cache)
        return HardwareRunResult(plan=plan, pipeline=pipeline, cache=cache, perf=perf)

    # ------------------------------------------------------------- internals

    def _attach_memory(self, planner: RRTStarPlanner, memory: MemorySystem) -> None:
        """Subscribe the cache model to the live SI-MBR-Tree access trace."""
        strategy = planner.strategy
        if not isinstance(strategy, SIMBRStrategy):
            return
        strategy.tree.access_hook = memory.on_tree_access
        original_nearest = strategy.nearest

        def nearest_with_trace_rotation(query, counter=None, exclude=None):
            result = original_nearest(query, counter=counter, exclude=exclude)
            memory.end_search()
            return result

        strategy.nearest = nearest_with_trace_rotation

    def _replay_counter_traffic(
        self, plan: PlanResult, memory: MemorySystem, robot: RobotModel
    ) -> None:
        """Charge the non-NS memory traffic implied by the op counts."""
        events = plan.counter.events
        ws = robot.workspace_dim
        memory.on_obstacle_aabb_read(ws, n=events.get("sat_aabb_obb", 0))
        memory.on_obstacle_obb_read(ws, n=events.get("sat_obb_obb", 0))
        memory.on_struct_update(n=events.get("cost_update", 0))
        accepted = sum(1 for r in plan.rounds if r.accepted)
        memory.on_node_write(n=accepted)
        # Engine-level hand-off: refinement consumes the cached neighborhood
        # (bounded by the SI-MBR leaf capacity) for every accepted sample.
        for record in plan.rounds:
            if record.accepted:
                memory.on_neighborhood_handoff(num_neighbors=8)

    def _perf(
        self, plan: PlanResult, pipeline: PipelineReport, cache: CacheReport
    ) -> PerfReport:
        cycles = pipeline.snr_cycles if self.enable_snr else pipeline.serial_cycles
        latency = cycles * self.params.cycle_time_s
        datapath_energy = cycles * self.params.energy_per_cycle_j
        return PerfReport(
            platform="MOPED" if self.enable_snr else "MOPED (no S&R)",
            latency_s=latency,
            energy_j=datapath_energy + cache.total_energy_j,
            area_mm2=self.params.area_mm2,
        )
