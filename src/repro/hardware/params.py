"""Hardware parameters: the Section V-B design point and baseline platforms.

The MOPED design example: 168 16-bit MACs, 198 KB on-chip SRAM, 28 nm CMOS,
0.62 mm^2, 137.5 mW at 1000 MHz.  The simulator derives latency from
MAC-equivalent operation counts scheduled onto the datapath units, and
energy from cycle counts x average power plus SRAM access energy.

Baselines (Section V-B):

* **CPU** — AMD EPYC 7601 running the C++ RTRBench RRT\\* port.  Modelled as
  the same operation stream executed scalar at ``cpu_cycles_per_mac``
  effective cycles per MAC-equivalent (ILP partially offsetting memory
  stalls and branch misprediction in pointer-heavy planner code).
* **RRT\\* ASIC** — the original algorithm on MOPED-equivalent compute/memory
  resources, with tree extension and refinement overlapped ([78]-style) but
  no sampling-level parallelism.
* **RRT\\* ASIC + CODAcc** — the ASIC with four occupancy-grid collision
  accelerators; the >3.2 MB grid lives on an external CPU whose costs are
  excluded, per the paper's footnote 3.

All numbers are intentionally explicit dataclass fields so ablations can
re-parameterise the models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MopedHardwareParams:
    """The MOPED accelerator design point (Section V-B)."""

    num_macs: int = 168
    sram_kbytes: float = 198.0
    frequency_hz: float = 1.0e9
    area_mm2: float = 0.62
    power_w: float = 0.1375
    # Datapath MAC allocation per unit: neighbor search, collision check,
    # refinement (distance calculator + rewiring), SI-MBR-Tree operator.
    # The collision checker gets the lion's share: SAT checks dominate the
    # per-round MAC load (Fig 3), so balancing *cycle* loads across the
    # pipelined units requires a wide checker datapath.
    ns_unit_macs: int = 16
    cc_unit_macs: int = 128
    refine_unit_macs: int = 16
    tree_op_macs: int = 8
    # S&R buffers (Section IV-B): 20-deep FIFO + 5-entry missing buffer,
    # 0.75 KB in total.
    fifo_depth: int = 20
    missing_buffer_entries: int = 5
    snr_buffer_kbytes: float = 0.75

    def __post_init__(self) -> None:
        allocated = (
            self.ns_unit_macs + self.cc_unit_macs + self.refine_unit_macs + self.tree_op_macs
        )
        if allocated != self.num_macs:
            raise ValueError(
                f"unit MAC allocation {allocated} != total MACs {self.num_macs}"
            )

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def energy_per_cycle_j(self) -> float:
        """Average energy per active cycle (P/f)."""
        return self.power_w / self.frequency_hz


@dataclass(frozen=True)
class CpuParams:
    """AMD EPYC 7601 software baseline model."""

    frequency_hz: float = 2.2e9
    # Effective cycles per MAC-equivalent for scalar pointer-chasing C++
    # planner code (loads, branches, FP ops per useful MAC).
    cycles_per_mac: float = 8.0
    power_w: float = 90.0  # planner workload share of the 180 W socket


@dataclass(frozen=True)
class AsicParams:
    """The RRT\\* ASIC baseline: MOPED-equivalent resources, no co-design."""

    num_macs: int = 168
    frequency_hz: float = 1.0e9
    area_mm2: float = 0.60  # same compute, slightly less control logic
    power_w: float = 0.135
    ns_unit_macs: int = 24
    cc_unit_macs: int = 128
    refine_unit_macs: int = 16

    @property
    def energy_per_cycle_j(self) -> float:
        return self.power_w / self.frequency_hz


@dataclass(frozen=True)
class CodaccParams:
    """Four CODAcc occupancy-grid collision accelerators bolted on the ASIC.

    Each accelerator probes ``probes_per_cycle`` grid cells per cycle — the
    one-bit-per-cell grid packs 64 cells into every SRAM word, so a single
    word fetch covers a 64-cell run.  The grid itself is held by an external
    CPU whose area/power/communication costs are excluded (paper footnote 3).
    """

    num_accelerators: int = 4
    probes_per_cycle: int = 64
    extra_area_mm2: float = 0.14
    extra_power_w: float = 0.031

    @property
    def total_probe_rate(self) -> float:
        return float(self.num_accelerators * self.probes_per_cycle)


def sram_access_energy_j(capacity_kbytes: float, word_bits: int = 16) -> float:
    """CACTI-flavoured per-access energy for a 28 nm SRAM macro.

    A simple capacity model: energy grows ~sqrt(capacity) from wordline /
    bitline length.  Anchored at ~0.6 pJ for a 16 KB macro, 16-bit words —
    representative of published 28 nm numbers.  Only *relative* energies
    matter for the paper's efficiency ratios.
    """
    if capacity_kbytes <= 0:
        raise ValueError("capacity must be positive")
    base_pj = 0.6 * math.sqrt(capacity_kbytes / 16.0)
    return base_pj * (word_bits / 16.0) * 1e-12


# SRAM bank sizing of the Fig 11 floorplan (KB); sums to ~198 KB with the
# small S&R buffers on top.
SRAM_BANKS_KB = {
    "exp_node": 64.0,       # EXP Node SRAM: d 16-bit values per node
    "bottom_ns": 64.0,      # Bottom NS SRAM: SI-MBR-Tree MBRs (2d values)
    "top_ns_cache": 8.0,    # cached top of the SI-MBR-Tree (unit-level)
    "obstacle_obb": 16.0,   # OBB obstacle SRAM (15/8 values each)
    "obstacle_aabb": 8.0,   # AABB obstacle SRAM (6/4 values each)
    "exp_struct": 32.0,     # EXP Struct SRAM: parent ids + path costs
    "trace_cache": 4.0,     # module-level search-trace cache
    "neighbor_cache": 2.0,  # engine-level identified-neighborhood cache
}
