"""Discrete-event simulation of the MOPED engine pipeline.

The analytical model (:mod:`repro.hardware.pipeline`) computes the
speculate-and-repair schedule with closed-form bookkeeping.  This module
simulates the same engine as explicit discrete events — unit
busy-intervals, FIFO slots, buffer entries — which serves two purposes:

1. **Cross-validation.**  An independently coded simulator agreeing with
   the analytical model (tested to within a small tolerance) is strong
   evidence neither is wrong — the same methodology hardware teams use
   between a performance model and RTL.
2. **Timelines.**  The DES produces a per-round event trace (NS start/end,
   CC start/end, stall intervals) that can be rendered as a text Gantt
   chart for inspection (:func:`format_timeline`).

The machine being simulated (Section IV-A/IV-B): a Tree Extension Module
whose NS pipeline processes rounds in order (one round in flight), a
collision checker fed through a FIFO of at most ``fifo_depth`` pending
samples, and a Missing Neighbors Buffer bounding how many accepted
insertions may be in flight past a speculative search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.metrics import RoundRecord
from repro.hardware.params import MopedHardwareParams


@dataclass(frozen=True)
class RoundTrace:
    """Timing of one sampling round in the simulated engine."""

    index: int
    ns_start: float
    ns_end: float
    cc_start: float
    cc_end: float
    stall: float
    missing_at_issue: int

    @property
    def retire_time(self) -> float:
        return self.cc_end


@dataclass
class EventSimResult:
    """Outcome of a discrete-event run."""

    traces: List[RoundTrace]
    total_cycles: float
    total_stall: float
    max_fifo: int
    max_missing: int

    @property
    def utilisation_cc(self) -> float:
        """Fraction of the makespan the collision checker is busy."""
        busy = sum(t.cc_end - t.cc_start for t in self.traces)
        return busy / self.total_cycles if self.total_cycles > 0 else 0.0

    @property
    def utilisation_ns(self) -> float:
        busy = sum(t.ns_end - t.ns_start - t.stall for t in self.traces)
        return busy / self.total_cycles if self.total_cycles > 0 else 0.0


class MopedEventSimulator:
    """Event-driven model of the S&R engine."""

    def __init__(self, params: Optional[MopedHardwareParams] = None,
                 repair_cycles_per_entry: float = 1.0):
        self.params = params if params is not None else MopedHardwareParams()
        self.repair_cycles_per_entry = repair_cycles_per_entry

    def _unit_cycles(self, record: RoundRecord):
        params = self.params
        ns = record.ns_macs / params.ns_unit_macs
        ns += record.maint_macs / params.tree_op_macs
        ns += record.other_macs / params.refine_unit_macs
        cc = record.cc_macs / params.cc_unit_macs
        return ns, cc

    def run(self, rounds: Sequence[RoundRecord]) -> EventSimResult:
        """Simulate the engine over a run's round records."""
        params = self.params
        traces: List[RoundTrace] = []
        cc_free = 0.0
        ns_free = 0.0
        # Completed-CC times per round, and which rounds inserted a node.
        cc_end_times: List[float] = []
        accepted: List[bool] = []
        max_fifo = 0
        max_missing = 0
        total_stall = 0.0

        for index, record in enumerate(rounds):
            ns_cycles, cc_cycles = self._unit_cycles(record)
            issue = ns_free

            # Event: wait while the FIFO of CC-pending samples is full.
            pending = sorted(t for t in cc_end_times if t > issue)
            if len(pending) >= params.fifo_depth:
                issue = pending[len(pending) - params.fifo_depth]
            # Event: wait while too many insertions are in flight for the
            # missing-neighbor buffer.
            inflight = sorted(
                cc_end_times[j]
                for j in range(index)
                if accepted[j] and cc_end_times[j] > issue
            )
            if len(inflight) >= params.missing_buffer_entries:
                issue = max(issue, inflight[len(inflight) - params.missing_buffer_entries])

            stall = issue - ns_free
            total_stall += stall
            fifo_now = sum(1 for t in cc_end_times if t > issue)
            max_fifo = max(max_fifo, fifo_now)

            missing = sum(
                1
                for j in range(index)
                if accepted[j] and cc_end_times[j] > issue
            )
            max_missing = max(max_missing, missing)

            ns_end = issue + ns_cycles + missing * self.repair_cycles_per_entry
            cc_start = max(ns_end, cc_free)
            cc_end = cc_start + cc_cycles
            cc_free = cc_end
            ns_free = ns_end
            cc_end_times.append(cc_end)
            accepted.append(record.accepted)
            traces.append(
                RoundTrace(
                    index=index,
                    ns_start=issue,
                    ns_end=ns_end,
                    cc_start=cc_start,
                    cc_end=cc_end,
                    stall=stall,
                    missing_at_issue=missing,
                )
            )

        total = max((t.retire_time for t in traces), default=0.0)
        return EventSimResult(
            traces=traces,
            total_cycles=total,
            total_stall=total_stall,
            max_fifo=max_fifo,
            max_missing=max_missing,
        )


def format_timeline(result: EventSimResult, first: int = 0, count: int = 12,
                    width: int = 64) -> str:
    """Render a text Gantt chart of rounds ``first .. first+count``.

    ``N`` marks neighbor-search occupancy, ``C`` collision-check occupancy,
    ``.`` idle.  One row per round, time normalised to the window.
    """
    window = result.traces[first : first + count]
    if not window:
        return "(no rounds in window)"
    t0 = min(t.ns_start for t in window)
    t1 = max(t.cc_end for t in window)
    span = max(t1 - t0, 1e-9)

    def col(t: float) -> int:
        return int((t - t0) / span * (width - 1))

    lines = [f"cycles {t0:.0f} .. {t1:.0f} (one row per sampling round)"]
    for trace in window:
        row = ["."] * width
        for i in range(col(trace.ns_start), col(trace.ns_end) + 1):
            row[i] = "N"
        for i in range(col(trace.cc_start), col(trace.cc_end) + 1):
            row[i] = "C"
        lines.append(f"r{trace.index:>4} |{''.join(row)}|")
    return "\n".join(lines)
