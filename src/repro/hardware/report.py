"""Performance reports: the latency / energy / area metrics of Fig 15."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PerfReport:
    """Latency, energy and area of one platform executing one task.

    The derived metrics follow the paper:

    * throughput — planning tasks per second (1 / latency);
    * energy efficiency — tasks per joule (1 / energy per task);
    * area efficiency — throughput per mm^2.
    """

    platform: str
    latency_s: float
    energy_j: float
    area_mm2: float

    @property
    def throughput_hz(self) -> float:
        return 1.0 / self.latency_s if self.latency_s > 0 else float("inf")

    @property
    def energy_efficiency(self) -> float:
        return 1.0 / self.energy_j if self.energy_j > 0 else float("inf")

    @property
    def area_efficiency(self) -> float:
        return self.throughput_hz / self.area_mm2 if self.area_mm2 > 0 else float("inf")

    def ratios_vs(self, baseline: "PerfReport") -> Dict[str, float]:
        """Improvement factors of *this* platform over ``baseline``.

        Matches the paper's reporting: speedup = baseline latency / ours,
        and efficiency ratios are ours / baseline.
        """
        return {
            "speedup": baseline.latency_s / self.latency_s,
            "energy_efficiency": self.energy_efficiency / baseline.energy_efficiency,
            "area_efficiency": self.area_efficiency / baseline.area_efficiency,
        }

    def row(self) -> str:
        """One formatted table row."""
        return (
            f"{self.platform:<18} {self.latency_s * 1e3:>10.4f} ms "
            f"{self.energy_j * 1e3:>10.5f} mJ {self.area_mm2:>7.2f} mm^2"
        )


def format_comparison(reports: Dict[str, PerfReport], reference: str) -> str:
    """Format a Fig 15-style comparison table against ``reference``."""
    if reference not in reports:
        raise KeyError(f"reference platform {reference!r} not in reports")
    ref = reports[reference]
    lines = [
        f"{'platform':<18} {'latency':>13} {'energy':>14} {'area':>11} "
        f"{'speedup':>9} {'e-eff':>8} {'a-eff':>8}"
    ]
    for name, report in reports.items():
        ratios = ref.ratios_vs(report)
        lines.append(
            report.row()
            + f" {ratios['speedup']:>8.1f}x {ratios['energy_efficiency']:>7.1f}x"
            f" {ratios['area_efficiency']:>7.1f}x"
        )
    return "\n".join(lines)
