"""SRAM banks and the hierarchical multi-level caching model (Section IV-C).

Three caching levels are modelled:

* **Unit-level** — the Top NS Cache holds the most-recently-used top nodes
  of the SI-MBR-Tree.  Searches walk root-to-leaf, so top nodes exhibit
  strong temporal locality; the cache is an LRU over node uids, fed by the
  real access trace the :class:`~repro.spatial.simbr.SIMBRTree` exposes via
  its ``access_hook``.
* **Module-level** — the search-trace cache keeps the non-leaf nodes the
  last nearest-neighbor search visited.  Those same nodes are the ones the
  insertion updates and the speculative search re-reads, so holding them
  avoids Bottom NS SRAM port conflicts; the model counts how many accesses
  the trace absorbs.
* **Engine-level** — the identified-neighborhood cache hands the Tree
  Extension Module's neighborhood result to the Tree Refinement Module
  without re-querying NS memory; the model counts the avoided re-reads.

Each absorbed access saves the difference between a Bottom NS SRAM access
and a small-cache access, which is where the Section IV-C energy saving
comes from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.params import SRAM_BANKS_KB, sram_access_energy_j


@dataclass
class SRAMBank:
    """One on-chip SRAM macro with access counting.

    Attributes:
        name: bank name from the Fig 11 floorplan.
        kbytes: capacity.
        reads / writes: 16-bit word access counts.
    """

    name: str
    kbytes: float
    reads: int = 0
    writes: int = 0

    def read(self, words: int = 1) -> None:
        self.reads += words

    def write(self, words: int = 1) -> None:
        self.writes += words

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def energy_j(self) -> float:
        """Total access energy for this bank."""
        return self.accesses * sram_access_energy_j(self.kbytes)


class LRUCache:
    """An LRU cache over opaque keys with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key) -> bool:
        """Touch ``key``; returns True on hit, False on miss (and inserts)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[key] = True
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class CacheReport:
    """Hit statistics for the three caching levels plus energy accounting."""

    top_cache_hits: int
    top_cache_misses: int
    trace_hits: int
    neighbor_cache_reads: int
    sram_energy_j: float
    cache_energy_j: float

    @property
    def top_cache_hit_rate(self) -> float:
        total = self.top_cache_hits + self.top_cache_misses
        return self.top_cache_hits / total if total else 0.0

    @property
    def total_energy_j(self) -> float:
        return self.sram_energy_j + self.cache_energy_j


class MemorySystem:
    """The Fig 11 memory floorplan with the three-level caching strategy.

    The planner's SI-MBR-Tree access trace drives the unit-level cache; the
    module-level trace cache is approximated by replay of the previous
    search's non-leaf visit set; engine-level neighborhood hand-off is
    counted per accepted sample.

    Args:
        dof: robot DoF (node record = ``dof`` words, MBR = ``2*dof`` words).
        top_cache_nodes: capacity of the Top NS Cache, in tree nodes.
        enable_caches: with False, every access is charged to the big SRAM
            banks (the ablation point for Section IV-C).
    """

    def __init__(self, dof: int, top_cache_nodes: int = 256, enable_caches: bool = True):
        if dof < 1:
            raise ValueError("dof must be >= 1")
        self.dof = dof
        self.enable_caches = enable_caches
        self.banks: Dict[str, SRAMBank] = {
            name: SRAMBank(name, kb) for name, kb in SRAM_BANKS_KB.items()
        }
        self.top_cache = LRUCache(top_cache_nodes)
        self._last_trace: set = set()
        self._current_trace: set = set()
        self.trace_hits = 0
        self.neighbor_cache_reads = 0

    # ------------------------------------------------------------ NS traffic

    def on_tree_access(self, node_uid: int, depth: int) -> None:
        """SI-MBR-Tree access hook: one MBR read (2*dof words).

        Shallow nodes hit the Top NS Cache (unit-level); nodes re-read from
        the previous search's trace are served by the module-level trace
        cache; everything else reads Bottom NS SRAM.
        """
        words = 2 * self.dof
        if self.enable_caches:
            if self.top_cache.access(node_uid):
                self.banks["top_ns_cache"].read(words)
                self._current_trace.add(node_uid)
                return
            if node_uid in self._last_trace:
                self.trace_hits += 1
                self.banks["trace_cache"].read(words)
                self._current_trace.add(node_uid)
                return
        self.banks["bottom_ns"].read(words)
        self._current_trace.add(node_uid)

    def end_search(self) -> None:
        """Rotate the module-level trace at the end of each NS query."""
        self._last_trace = self._current_trace
        self._current_trace = set()

    # ------------------------------------------------------- other bank usage

    def on_node_read(self, n: int = 1) -> None:
        """EXP Node SRAM read of ``n`` node records."""
        self.banks["exp_node"].read(n * self.dof)

    def on_node_write(self, n: int = 1) -> None:
        self.banks["exp_node"].write(n * self.dof)

    def on_obstacle_obb_read(self, workspace_dim: int, n: int = 1) -> None:
        words = 15 if workspace_dim == 3 else 8
        self.banks["obstacle_obb"].read(n * words)

    def on_obstacle_aabb_read(self, workspace_dim: int, n: int = 1) -> None:
        words = 6 if workspace_dim == 3 else 4
        self.banks["obstacle_aabb"].read(n * words)

    def on_struct_update(self, n: int = 1) -> None:
        """EXP Struct SRAM write (parent id + path cost)."""
        self.banks["exp_struct"].write(n * 2)

    def on_neighborhood_handoff(self, num_neighbors: int) -> None:
        """Engine-level cache: refinement reads neighbors from the cache
        instead of re-querying NS memory."""
        words = num_neighbors * self.dof
        if self.enable_caches:
            self.neighbor_cache_reads += num_neighbors
            self.banks["neighbor_cache"].read(words)
        else:
            self.banks["bottom_ns"].read(words)

    # ---------------------------------------------------------------- report

    def report(self) -> CacheReport:
        """Summarise hits and energy across the hierarchy."""
        cache_banks = {"top_ns_cache", "trace_cache", "neighbor_cache"}
        sram_energy = sum(
            bank.energy_j() for name, bank in self.banks.items() if name not in cache_banks
        )
        cache_energy = sum(
            bank.energy_j() for name, bank in self.banks.items() if name in cache_banks
        )
        return CacheReport(
            top_cache_hits=self.top_cache.hits,
            top_cache_misses=self.top_cache.misses,
            trace_hits=self.trace_hits,
            neighbor_cache_reads=self.neighbor_cache_reads,
            sram_energy_j=sram_energy,
            cache_energy_j=cache_energy,
        )
