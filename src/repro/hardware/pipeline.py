"""The speculate-and-repair pipeline timing model (Section IV-B).

The serialized RRT\\* schedule runs, for every sampling round, neighbor
search (NS) then collision check (CC) then tree maintenance back to back;
the next round's NS cannot start until the current round fully finishes.

With S&R, the Tree Extension Module launches round *i+1*'s sampling and
(speculative) NS as soon as round *i*'s NS completes, while round *i*'s CC
still occupies the collision checker.  A FIFO holds sampled points awaiting
CC; the Missing Neighbors Buffer holds nodes whose insertion the speculative
search could not see; the repair step is a handful of distance compares.

This module replays a planning run's per-round unit loads
(:class:`~repro.core.metrics.RoundRecord`) through both schedules and
reports latency, speedup, and the peak FIFO / missing-buffer occupancies —
the quantities behind Fig 17 and the 20-deep FIFO / 5-entry buffer sizing
claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.metrics import RoundRecord, wave_occupancy
from repro.hardware.params import MopedHardwareParams
from repro.obs import get_registry, get_tracer


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of replaying one run through the two schedules.

    Attributes:
        serial_cycles: latency of the fully serialized schedule.
        snr_cycles: latency with speculate-and-repair overlap.
        max_fifo_occupancy: peak number of sampled points awaiting CC.
        max_missing_neighbors: peak in-flight insertions a speculative NS
            missed (sizes the Missing Neighbors Buffer).
        fifo_stall_cycles: cycles the extension module stalled because the
            FIFO was full.
        repair_cycles: total cycles spent in repair compares.
    """

    serial_cycles: float
    snr_cycles: float
    max_fifo_occupancy: int
    max_missing_neighbors: int
    fifo_stall_cycles: float
    repair_cycles: float

    @property
    def speedup(self) -> float:
        return self.serial_cycles / self.snr_cycles if self.snr_cycles > 0 else float("inf")


@dataclass(frozen=True)
class WaveStats:
    """Lane utilisation of a wavefront run (Section IV-B's S&R lanes).

    The wavefront planner issues ``wave_width`` speculative rounds per wave;
    a lane slot is *committed* when its speculative result survived to
    commit (no intra-wave conflict forced a scalar redo).  Occupancy is
    committed / slots — the software analogue of pipeline-lane utilisation.

    Attributes:
        lanes: the wave width the run was configured with (0 = scalar run).
        slots: wave-committed rounds, i.e. lane issues.
        committed: slots whose speculative result was used at commit.
        occupancy: committed / slots (None for scalar runs).
    """

    lanes: int
    slots: int
    committed: int
    occupancy: float | None


def wave_lane_utilization(rounds: Sequence[RoundRecord]) -> WaveStats:
    """Fold a run's round records into :class:`WaveStats`."""
    wave_rounds = [r for r in rounds if r.wave_width > 1]
    if not wave_rounds:
        return WaveStats(lanes=0, slots=0, committed=0, occupancy=None)
    committed = sum(1 for r in wave_rounds if not r.repaired_in_wave)
    return WaveStats(
        lanes=max(r.wave_width for r in wave_rounds),
        slots=len(wave_rounds),
        committed=committed,
        occupancy=wave_occupancy(list(wave_rounds)),
    )


def _round_unit_cycles(record: RoundRecord, params: MopedHardwareParams):
    """Cycles each unit needs for one round's load.

    NS-side work (search + tree maintenance + sampling/steering/cost) runs
    on the extension module's NS, tree-operator and refine units; CC work
    runs on the collision checker.
    """
    ns = record.ns_macs / params.ns_unit_macs
    ns += record.maint_macs / params.tree_op_macs
    ns += record.other_macs / params.refine_unit_macs
    cc = record.cc_macs / params.cc_unit_macs
    return ns, cc


def serialized_latency_cycles(
    rounds: Sequence[RoundRecord], params: MopedHardwareParams
) -> float:
    """Latency of the dependency-respecting serial schedule."""
    total = 0.0
    for record in rounds:
        ns, cc = _round_unit_cycles(record, params)
        total += ns + cc
    return total


def snr_latency_cycles(
    rounds: Sequence[RoundRecord],
    params: MopedHardwareParams,
    repair_cycles_per_entry: float = 1.0,
) -> PipelineReport:
    """Replay the speculate-and-repair schedule.

    Event model: the NS pipeline processes rounds back to back (round i+1's
    speculative NS starts when round i's NS ends, stalling only when the
    FIFO of CC-pending samples is full); the CC unit drains the FIFO in
    order.  A round's insertion is pending from its NS completion until its
    CC completion; speculative searches overlapping that window must repair
    against those pending nodes.
    """
    with get_tracer().span("pipeline.replay", rounds=len(rounds)):
        report = _replay_snr(rounds, params, repair_cycles_per_entry)
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "repro_pipeline_replays_total", "Pipeline schedule replays"
        ).inc()
        registry.gauge(
            "repro_pipeline_fifo_peak", "Peak CC-pending FIFO occupancy"
        ).set(report.max_fifo_occupancy)
        registry.gauge(
            "repro_pipeline_missing_peak", "Peak missing-neighbors in flight"
        ).set(report.max_missing_neighbors)
        registry.counter(
            "repro_pipeline_stall_cycles_total", "Cycles lost to FIFO back-pressure"
        ).inc(report.fifo_stall_cycles)
    return report


def _replay_snr(
    rounds: Sequence[RoundRecord],
    params: MopedHardwareParams,
    repair_cycles_per_entry: float,
) -> PipelineReport:
    serial = serialized_latency_cycles(rounds, params)
    ns_free = 0.0  # when the NS pipeline can accept the next round
    cc_free = 0.0  # when the collision checker frees up
    cc_done: List[float] = []  # per-round CC completion times
    ns_done: List[float] = []  # per-round NS completion times
    max_fifo = 0
    max_missing = 0
    stall = 0.0
    repair_total = 0.0

    for i, record in enumerate(rounds):
        ns, cc = _round_unit_cycles(record, params)

        ns_start = ns_free
        # FIFO back-pressure: at most fifo_depth samples may await CC, so
        # the NS pipeline waits until enough earlier CCs drain.
        blockers = sorted(t for t in cc_done if t > ns_start)
        if len(blockers) >= params.fifo_depth:
            ns_start = blockers[len(blockers) - params.fifo_depth]
        # Missing-buffer back-pressure: at most missing_buffer_entries
        # accepted insertions may be in flight past a speculative search.
        insert_blockers = sorted(
            cc_done[j]
            for j in range(i)
            if rounds[j].accepted and cc_done[j] > ns_start
        )
        if len(insert_blockers) >= params.missing_buffer_entries:
            ns_start = max(
                ns_start,
                insert_blockers[len(insert_blockers) - params.missing_buffer_entries],
            )
        stall += ns_start - ns_free

        fifo_now = sum(1 for t in cc_done if t > ns_start)
        max_fifo = max(max_fifo, fifo_now)

        ns_end = ns_start + ns

        # Missing neighbors: accepted rounds whose insertion (completed at
        # their CC end) was still in flight while this NS ran.
        missing = sum(
            1
            for j in range(i)
            if rounds[j].accepted and cc_done[j] > ns_start
        )
        max_missing = max(max_missing, missing)
        repair = missing * repair_cycles_per_entry
        repair_total += repair
        ns_end += repair

        cc_start = max(ns_end, cc_free)
        cc_end = cc_start + cc
        cc_free = cc_end
        ns_free = ns_end
        ns_done.append(ns_end)
        cc_done.append(cc_end)

    total = max(cc_done[-1] if cc_done else 0.0, ns_done[-1] if ns_done else 0.0)
    return PipelineReport(
        serial_cycles=serial,
        snr_cycles=total,
        max_fifo_occupancy=max_fifo,
        max_missing_neighbors=max_missing,
        fifo_stall_cycles=stall,
        repair_cycles=repair_total,
    )
