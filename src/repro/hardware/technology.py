"""28 nm technology model: deriving the paper's area and power numbers.

Section V-B reports aggregates for the synthesized design — 168 16-bit
MACs + 198 KB SRAM in 0.62 mm² drawing 137.5 mW at 1 GHz — without a
component breakdown.  This module rebuilds those totals bottom-up from
published 28 nm characteristics, which (a) checks the paper's numbers for
internal consistency and (b) lets the baselines' area/power (ASIC with the
same resources, CODAcc's extra units) be *derived* rather than pinned.

Representative 28 nm constants (planar HKMG, nominal corner):

* 6T SRAM bit cell: ~0.12 um^2; array efficiency ~55-65% once periphery
  (decoders, sense amps, IO) is included.
* A 16-bit MAC (multiplier + adder + pipeline registers): ~2.5-3k gate
  equivalents at ~0.5 um^2/gate -> ~1200-1800 um^2.
* Dynamic energy: ~0.9 pJ per 16-bit MAC *operation slot* at 1 GHz —
  synthesis-reported power includes pipeline registers, result muxing and
  local interconnect, roughly doubling the bare multiplier-adder energy;
  SRAM access energy from the same sqrt-capacity model as
  :func:`~repro.hardware.params.sram_access_energy_j`.
* Leakage: a few percent of total power at this size; folded into the
  static term.

These are order-of-magnitude published figures, not a PDK; the test suite
checks the derived totals land within a tolerance of the paper's reported
aggregates — close agreement is evidence the paper's design point is
self-consistent, not a calibration exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.params import MopedHardwareParams, SRAM_BANKS_KB, sram_access_energy_j


@dataclass(frozen=True)
class TechnologyModel:
    """28 nm constants used to rebuild the design point bottom-up."""

    sram_bitcell_um2: float = 0.12
    sram_array_efficiency: float = 0.60
    mac16_area_um2: float = 1500.0
    control_area_fraction: float = 0.10  # FSMs, FIFOs, muxing over datapath+SRAM
    mac_energy_pj: float = 0.9
    static_power_fraction: float = 0.08
    clock_tree_power_fraction: float = 0.12

    # ------------------------------------------------------------------ area

    def sram_area_mm2(self, kbytes: float) -> float:
        """Macro area for ``kbytes`` of SRAM including periphery."""
        bits = kbytes * 1024.0 * 8.0
        return bits * self.sram_bitcell_um2 / self.sram_array_efficiency / 1e6

    def datapath_area_mm2(self, num_macs: int) -> float:
        """Area of the MAC datapath."""
        return num_macs * self.mac16_area_um2 / 1e6

    def total_area_mm2(self, params: MopedHardwareParams) -> float:
        """Bottom-up die area for a design point."""
        sram = self.sram_area_mm2(params.sram_kbytes + params.snr_buffer_kbytes)
        datapath = self.datapath_area_mm2(params.num_macs)
        return (sram + datapath) * (1.0 + self.control_area_fraction)

    def area_breakdown(self, params: MopedHardwareParams) -> dict:
        """Per-component area in mm^2."""
        sram = self.sram_area_mm2(params.sram_kbytes + params.snr_buffer_kbytes)
        datapath = self.datapath_area_mm2(params.num_macs)
        control = (sram + datapath) * self.control_area_fraction
        return {"sram": sram, "datapath": datapath, "control": control}

    # ----------------------------------------------------------------- power

    def dynamic_power_w(
        self,
        params: MopedHardwareParams,
        mac_activity: float = 0.7,
        sram_accesses_per_cycle: float = 8.0,
    ) -> float:
        """Dynamic power at ``mac_activity`` datapath utilisation.

        SRAM power: ``sram_accesses_per_cycle`` word accesses per cycle at
        the per-access energy of a mid-sized (32 KB) bank.
        """
        if not 0.0 <= mac_activity <= 1.0:
            raise ValueError("mac_activity must be in [0, 1]")
        mac_power = (
            params.num_macs * mac_activity * self.mac_energy_pj * 1e-12
            * params.frequency_hz
        )
        sram_power = (
            sram_accesses_per_cycle * sram_access_energy_j(32.0) * params.frequency_hz
        )
        return mac_power + sram_power

    def total_power_w(self, params: MopedHardwareParams, mac_activity: float = 0.7) -> float:
        """Total power: dynamic + clock tree + static."""
        dynamic = self.dynamic_power_w(params, mac_activity=mac_activity)
        with_clock = dynamic * (1.0 + self.clock_tree_power_fraction)
        return with_clock / (1.0 - self.static_power_fraction)

    def power_breakdown(self, params: MopedHardwareParams, mac_activity: float = 0.7) -> dict:
        """Per-component power in watts."""
        mac_power = (
            params.num_macs * mac_activity * self.mac_energy_pj * 1e-12
            * params.frequency_hz
        )
        sram_power = 8.0 * sram_access_energy_j(32.0) * params.frequency_hz
        dynamic = mac_power + sram_power
        clock = dynamic * self.clock_tree_power_fraction
        total = self.total_power_w(params, mac_activity)
        static = total - dynamic - clock
        return {"mac": mac_power, "sram": sram_power, "clock": clock, "static": static}


def consistency_report(tech: TechnologyModel = None,
                       params: MopedHardwareParams = None) -> str:
    """Compare the bottom-up totals with the paper's reported aggregates."""
    tech = tech if tech is not None else TechnologyModel()
    params = params if params is not None else MopedHardwareParams()
    area = tech.total_area_mm2(params)
    power = tech.total_power_w(params)
    lines = [
        "28nm bottom-up vs paper-reported design point",
        f"  area : derived {area:.3f} mm^2  vs reported {params.area_mm2} mm^2",
        f"  power: derived {power * 1e3:.1f} mW  vs reported {params.power_w * 1e3} mW",
    ]
    breakdown = tech.area_breakdown(params)
    lines.append("  area breakdown: " + ", ".join(
        f"{name} {value:.3f}" for name, value in breakdown.items()
    ))
    return "\n".join(lines)
