"""Baseline platform models: CPU, RRT\\* ASIC, and RRT\\* ASIC + CODAcc.

Each baseline executes the *original* RRT\\* algorithm (brute nearest
neighbor, exhaustive collision checking) and converts the resulting
operation stream into latency and energy on its platform parameters
(Section V-B):

* :func:`run_cpu_baseline` — the RTRBench-style C++ software planner on an
  AMD EPYC 7601.
* :func:`run_asic_baseline` — a fixed-function RRT\\* accelerator with the
  same compute/memory resources as MOPED, tree extension and refinement
  overlapped (the [78]-style architecture) but no sampling-level overlap.
* :func:`run_codacc_baseline` — the ASIC with four CODAcc occupancy-grid
  collision accelerators; the occupancy grid lives off-chip on a host CPU
  whose costs are excluded (paper footnote 3).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PlannerConfig, baseline_config
from repro.core.counters import mac_cost
from repro.core.metrics import PlanResult
from repro.core.robots import RobotModel
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask
from repro.hardware.params import AsicParams, CodaccParams, CpuParams, sram_access_energy_j
from repro.hardware.report import PerfReport


def _run_plan(robot: RobotModel, task: PlanningTask, config: PlannerConfig) -> PlanResult:
    return RRTStarPlanner(robot, task, config).plan()


def _sram_energy_estimate(plan: PlanResult, dof: int, workspace_dim: int) -> float:
    """Rough SRAM energy for a baseline accelerator's op stream.

    Each neighbor-search distance reads one node record (``dof`` words) and
    each SAT check reads one obstacle record from a ~64 KB bank.
    """
    events = plan.counter.events
    per_word = sram_access_energy_j(64.0)
    obb_words = 15 if workspace_dim == 3 else 8
    aabb_words = 6 if workspace_dim == 3 else 4
    words = (
        events.get("dist", 0) * dof
        + events.get("sat_obb_obb", 0) * obb_words
        + events.get("sat_aabb_obb", 0) * aabb_words
        + events.get("cost_update", 0) * 2
    )
    return words * per_word


def cpu_report(plan: PlanResult, params: Optional[CpuParams] = None) -> PerfReport:
    """Convert an RRT\\* op stream into the EPYC 7601 software cost model."""
    params = params if params is not None else CpuParams()
    cycles = plan.total_macs * params.cycles_per_mac
    latency = cycles / params.frequency_hz
    return PerfReport(
        platform="CPU (EPYC 7601)",
        latency_s=latency,
        energy_j=latency * params.power_w,
        area_mm2=213.0,  # one Zeppelin die; only used for area-efficiency ratios
    )


def run_cpu_baseline(
    robot: RobotModel,
    task: PlanningTask,
    config: Optional[PlannerConfig] = None,
    params: Optional[CpuParams] = None,
) -> tuple:
    """Original RRT\\* on the EPYC 7601 software model.

    Returns ``(PlanResult, PerfReport)``.
    """
    config = config if config is not None else baseline_config()
    plan = _run_plan(robot, task, config)
    return plan, cpu_report(plan, params)


def _asic_cycles(plan: PlanResult, params: AsicParams) -> float:
    """Serialized per-round schedule with extension/refinement overlap.

    NS and CC run back to back within a round (the inter-round dependency
    of Section II-C); refinement's cost updates overlap the NS unit.
    """
    total = 0.0
    for record in plan.rounds:
        ns = (record.ns_macs + record.maint_macs) / params.ns_unit_macs
        refine = record.other_macs / params.refine_unit_macs
        cc = record.cc_macs / params.cc_unit_macs
        total += max(ns, refine) + cc
    return total


def asic_report(
    plan: PlanResult, robot: RobotModel, params: Optional[AsicParams] = None
) -> PerfReport:
    """Convert an RRT\\* op stream into the fixed-function ASIC cost model."""
    params = params if params is not None else AsicParams()
    cycles = _asic_cycles(plan, params)
    latency = cycles / params.frequency_hz
    energy = cycles * params.energy_per_cycle_j + _sram_energy_estimate(
        plan, robot.dof, robot.workspace_dim
    )
    return PerfReport(
        platform="RRT* ASIC",
        latency_s=latency,
        energy_j=energy,
        area_mm2=params.area_mm2,
    )


def run_asic_baseline(
    robot: RobotModel,
    task: PlanningTask,
    config: Optional[PlannerConfig] = None,
    params: Optional[AsicParams] = None,
) -> tuple:
    """Original RRT\\* on MOPED-equivalent fixed-function hardware."""
    config = config if config is not None else baseline_config()
    plan = _run_plan(robot, task, config)
    return plan, asic_report(plan, robot, params)


def codacc_report(
    plan: PlanResult,
    robot: RobotModel,
    asic_params: Optional[AsicParams] = None,
    codacc_params: Optional[CodaccParams] = None,
) -> PerfReport:
    """Convert a grid-checker RRT\\* op stream into the CODAcc cost model."""
    asic_params = asic_params if asic_params is not None else AsicParams()
    codacc_params = codacc_params if codacc_params is not None else CodaccParams()
    lookup_macs = mac_cost("grid_lookup", robot.workspace_dim)
    total = 0.0
    for record in plan.rounds:
        ns = (record.ns_macs + record.maint_macs) / asic_params.ns_unit_macs
        refine = record.other_macs / asic_params.refine_unit_macs
        # CC load is voxel probes drained at the CODAcc probe rate.
        probes = record.cc_macs / lookup_macs
        cc = probes / codacc_params.total_probe_rate
        total += max(ns, refine) + cc
    latency = total / asic_params.frequency_hz
    power = asic_params.power_w + codacc_params.extra_power_w
    energy = total * (power / asic_params.frequency_hz) + _sram_energy_estimate(
        plan, robot.dof, robot.workspace_dim
    )
    return PerfReport(
        platform="RRT* ASIC+CODAcc",
        latency_s=latency,
        energy_j=energy,
        area_mm2=asic_params.area_mm2 + codacc_params.extra_area_mm2,
    )


def run_codacc_baseline(
    robot: RobotModel,
    task: PlanningTask,
    config: Optional[PlannerConfig] = None,
    asic_params: Optional[AsicParams] = None,
    codacc_params: Optional[CodaccParams] = None,
) -> tuple:
    """Original RRT\\* with occupancy-grid collision checking on 4 CODAccs."""
    if config is None:
        config = baseline_config(checker="grid")
    elif config.checker != "grid":
        raise ValueError("the CODAcc baseline requires the occupancy-grid checker")
    plan = _run_plan(robot, task, config)
    return plan, codacc_report(plan, robot, asic_params, codacc_params)
