"""Scalar reference implementations of the batch kernel API.

Every function here has the same signature and return type as its
counterpart in :mod:`repro.kernels.batch` but is implemented as a per-row
Python loop over the original scalar routines in :mod:`repro.geometry.sat`.
They are the *golden* implementations: the property-based equivalence tests
assert that the batch kernels reproduce these booleans exactly, and the
:mod:`repro.bench` harness times batch against them to quantify the win.

They are deliberately not fast — they exist to be trusted and to be beaten.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb

__all__ = [
    "aabb_aabb_grid",
    "aabb_obb_grid",
    "aabb_obb_pairs",
    "obb_obb_grid",
    "obb_obb_pairs",
    "nearest_index",
    "radius_mask",
]


def aabb_aabb_grid(a_lo, a_hi, b_lo, b_hi) -> np.ndarray:
    """Interval-overlap SAT of ``R`` boxes against ``M`` boxes: ``(R, M)``."""
    rows = [AABB(lo, hi) for lo, hi in zip(np.asarray(a_lo, dtype=float),
                                           np.asarray(a_hi, dtype=float))]
    cols = [AABB(lo, hi) for lo, hi in zip(np.asarray(b_lo, dtype=float),
                                           np.asarray(b_hi, dtype=float))]
    out = np.empty((len(rows), len(cols)), dtype=bool)
    for i, a in enumerate(rows):
        for j, b in enumerate(cols):
            out[i, j] = a.intersects(b)
    return out


def obb_obb_grid(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """Exact OBB-OBB SAT of ``R`` boxes against ``M`` boxes: ``(R, M)``."""
    rows = [OBB(c, h, r) for c, h, r in zip(a_c, a_h, a_r)]
    cols = [OBB(c, h, r) for c, h, r in zip(b_c, b_h, b_r)]
    out = np.empty((len(rows), len(cols)), dtype=bool)
    for i, a in enumerate(rows):
        for j, b in enumerate(cols):
            out[i, j] = obb_intersects_obb(a, b)
    return out


def obb_obb_pairs(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """Exact OBB-OBB SAT of ``P`` matched pairs: ``(P,)``."""
    out = np.empty(len(a_c), dtype=bool)
    for p in range(len(a_c)):
        out[p] = obb_intersects_obb(
            OBB(a_c[p], a_h[p], a_r[p]), OBB(b_c[p], b_h[p], b_r[p])
        )
    return out


def aabb_obb_grid(box_lo, box_hi, b_c, b_h, b_r) -> np.ndarray:
    """First-stage AABB-OBB SAT: ``M`` boxes against ``R`` OBBs: ``(R, M)``."""
    boxes = [AABB(lo, hi) for lo, hi in zip(np.asarray(box_lo, dtype=float),
                                            np.asarray(box_hi, dtype=float))]
    obbs = [OBB(c, h, r) for c, h, r in zip(b_c, b_h, b_r)]
    out = np.empty((len(obbs), len(boxes)), dtype=bool)
    for i, obb in enumerate(obbs):
        for j, box in enumerate(boxes):
            out[i, j] = aabb_intersects_obb(box, obb)
    return out


def aabb_obb_pairs(box_lo, box_hi, b_c, b_h, b_r) -> np.ndarray:
    """First-stage AABB-OBB SAT over ``P`` matched pairs: ``(P,)``."""
    out = np.empty(len(b_c), dtype=bool)
    for p in range(len(b_c)):
        out[p] = aabb_intersects_obb(
            AABB(box_lo[p], box_hi[p]), OBB(b_c[p], b_h[p], b_r[p])
        )
    return out


def nearest_index(points: np.ndarray, query: np.ndarray):
    """Per-node Python scan: index and distance of the nearest row."""
    best, best_sq = 0, float("inf")
    for i in range(points.shape[0]):
        diff = points[i] - query
        d_sq = float(diff @ diff)
        if d_sq < best_sq:
            best, best_sq = i, d_sq
    return best, float(np.sqrt(best_sq))


def radius_mask(points: np.ndarray, query: np.ndarray, radius: float):
    """Per-node Python radius filter with the batch API's return shape."""
    d_sq = np.empty(points.shape[0])
    hits = []
    r_sq = radius * radius
    for i in range(points.shape[0]):
        diff = points[i] - query
        d_sq[i] = float(diff @ diff)
        if d_sq[i] <= r_sq:
            hits.append(i)
    return d_sq, np.asarray(hits, dtype=int)
