"""Stacked-ndarray views of the planner's geometric state.

The batch kernels in :mod:`repro.kernels.batch` operate on contiguous
structure-of-arrays tensors rather than per-object Python dataclasses.  This
module defines those containers and the conversions from the object world:

* :class:`ObstacleTensors` — every obstacle of an
  :class:`~repro.core.world.Environment` stacked into ``(M, d)`` centre /
  half-extent matrices, ``(M, d, d)`` rotation tensors, and the derived
  ``(M, d)`` AABB corner matrices (the AABB SRAM contents, Section IV-A).
* :class:`BodyBatch` — the robot body OBBs of one *or many* configurations
  flattened to ``(R, ...)`` rows (``R = num_configs * bodies_per_config``),
  the unit of work of the batch collision funnel.
* :class:`FlatRTree` — the obstacle R-tree's nodes exported to index-
  addressed arrays so a whole traversal's SAT tests can be evaluated in one
  stacked pass and then *replayed* exactly (same visit order, same
  early-exit points, hence bit-identical operation counts).

Everything here is precomputed once per environment / per motion check; the
hot loop only reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.spatial.rtree import RTree


@dataclass(frozen=True)
class ObstacleTensors:
    """All obstacles of an environment as stacked ndarrays.

    Attributes:
        centers: ``(M, d)`` obstacle OBB centres.
        half_extents: ``(M, d)`` obstacle OBB half extents.
        rotations: ``(M, d, d)`` obstacle OBB rotation matrices.
        aabb_lo / aabb_hi: ``(M, d)`` corners of the derived obstacle AABBs
            (identical values to ``Environment.obstacle_aabbs``).
    """

    centers: np.ndarray
    half_extents: np.ndarray
    rotations: np.ndarray
    aabb_lo: np.ndarray
    aabb_hi: np.ndarray

    @property
    def count(self) -> int:
        return self.centers.shape[0]

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    @staticmethod
    def from_obbs(obstacles: Sequence[OBB], aabbs: Optional[Sequence[AABB]] = None,
                  dim: Optional[int] = None) -> "ObstacleTensors":
        """Stack obstacle OBBs (and their derived AABBs) into tensors.

        Args:
            obstacles: the environment's obstacle OBBs.
            aabbs: the already-derived AABBs; passed through verbatim so the
                tensor values match ``Environment.obstacle_aabbs`` exactly.
                Derived from the OBBs when omitted.
            dim: workspace dimension, required when ``obstacles`` is empty.
        """
        if not obstacles:
            if dim is None:
                raise ValueError("dim is required for an empty obstacle set")
            empty = np.empty((0, dim))
            return ObstacleTensors(
                centers=empty,
                half_extents=empty.copy(),
                rotations=np.empty((0, dim, dim)),
                aabb_lo=empty.copy(),
                aabb_hi=empty.copy(),
            )
        if aabbs is None:
            aabbs = [obb.to_aabb() for obb in obstacles]
        return ObstacleTensors(
            centers=np.stack([obb.center for obb in obstacles]),
            half_extents=np.stack([obb.half_extents for obb in obstacles]),
            rotations=np.stack([obb.rotation for obb in obstacles]),
            aabb_lo=np.stack([box.lo for box in aabbs]),
            aabb_hi=np.stack([box.hi for box in aabbs]),
        )


@dataclass(frozen=True)
class BodyBatch:
    """Robot body OBBs for a batch of configurations, flattened to rows.

    Row ``r`` holds body ``r % bodies_per_config`` of configuration
    ``r // bodies_per_config`` — the same (config, body) iteration order as
    the scalar checker's nested loops, which is what lets the replay step
    reproduce its operation counts exactly.
    """

    centers: np.ndarray        # (R, d)
    half_extents: np.ndarray   # (R, d)
    rotations: np.ndarray      # (R, d, d)
    num_configs: int
    bodies_per_config: int
    # Derived world AABBs (|R| @ e around the centre), filled lazily.
    _aabb: List[Optional[np.ndarray]] = field(default_factory=lambda: [None, None])

    @property
    def rows(self) -> int:
        return self.centers.shape[0]

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    def aabb_corners(self):
        """World AABB corners ``(lo, hi)`` of every row, derived once.

        Uses the same arithmetic as :meth:`repro.geometry.obb.OBB.to_aabb`
        (``world_half_i = sum_j |R[i, j]| e_j``) so corner values are
        identical to the scalar path's.
        """
        if self._aabb[0] is None:
            # Stacked matmul runs the scalar path's ``|R| @ e`` kernel per
            # slice, so the corner values are bit-identical to ``to_aabb``.
            world_half = (np.abs(self.rotations) @ self.half_extents[..., None])[..., 0]
            self._aabb[0] = self.centers - world_half
            self._aabb[1] = self.centers + world_half
        return self._aabb[0], self._aabb[1]

    def row_obb(self, row: int) -> OBB:
        """Materialise one row back into an :class:`OBB` (diagnostics)."""
        return OBB(self.centers[row], self.half_extents[row], self.rotations[row])

    @staticmethod
    def from_obbs(obbs: Sequence[OBB], num_configs: int = 1) -> "BodyBatch":
        """Stack a flat list of OBBs (row-major in (config, body) order)."""
        if not obbs:
            raise ValueError("need at least one body OBB")
        if len(obbs) % num_configs:
            raise ValueError("len(obbs) must be a multiple of num_configs")
        return BodyBatch(
            centers=np.stack([o.center for o in obbs]),
            half_extents=np.stack([o.half_extents for o in obbs]),
            rotations=np.stack([o.rotation for o in obbs]),
            num_configs=num_configs,
            bodies_per_config=len(obbs) // num_configs,
        )

    @staticmethod
    def from_frames(centers: np.ndarray, half_extents: np.ndarray,
                    rotations: np.ndarray) -> "BodyBatch":
        """Build from ``(k, B, ...)`` frame tensors (batch forward kinematics)."""
        k, b, d = centers.shape
        return BodyBatch(
            centers=np.ascontiguousarray(centers.reshape(k * b, d)),
            half_extents=np.ascontiguousarray(half_extents.reshape(k * b, d)),
            rotations=np.ascontiguousarray(rotations.reshape(k * b, d, d)),
            num_configs=k,
            bodies_per_config=b,
        )


@dataclass(frozen=True)
class FlatRTree:
    """Index-addressed export of a static :class:`~repro.spatial.rtree.RTree`.

    The traversal *units* a query touches are the node MBRs followed by the
    leaf entry boxes: unit ``u < num_nodes`` is node ``u`` (root is unit 0),
    unit ``num_nodes + i`` is obstacle ``i``'s AABB.  ``unit_lo`` /
    ``unit_hi`` stack all of them so one kernel call covers every box the
    scalar traversal could possibly test; :meth:`replay` walks the same
    stack discipline as ``RTree.query_obb`` over precomputed masks.
    """

    unit_lo: np.ndarray            # (U, d) = nodes then entry boxes
    unit_hi: np.ndarray            # (U, d)
    children: tuple                # children[n] = tuple of child node ids
    entries: tuple                 # entries[n] = tuple of obstacle indices
    num_nodes: int
    # Static traversal structure, precomputed so a whole batch of queries
    # can replay counts with ndarray reductions instead of per-row walks:
    parents: np.ndarray            # (N,) parent node id, -1 for the root
    entry_leaf: np.ndarray         # (M,) leaf node id holding each obstacle
    entry_order: np.ndarray        # (M,) obstacle ids in full-traversal order

    @property
    def num_units(self) -> int:
        return self.unit_lo.shape[0]

    def entry_unit(self, obstacle_index: int) -> int:
        """Unit index of obstacle ``obstacle_index``'s AABB."""
        return self.num_nodes + obstacle_index

    @staticmethod
    def from_rtree(rtree: RTree) -> "FlatRTree":
        """Export an R-tree's nodes and leaf entry boxes."""
        lo_rows, hi_rows, children, entries = rtree.export_nodes()
        num_nodes = len(children)
        num_entries = sum(len(e) for e in entries)
        parents = np.full(num_nodes, -1, dtype=np.intp)
        entry_leaf = np.zeros(num_entries, dtype=np.intp)
        for node, kids in enumerate(children):
            for kid in kids:
                parents[kid] = node
        for node, node_entries in enumerate(entries):
            for idx in node_entries:
                entry_leaf[idx] = node
        # Obstacle visit order of a prune-free query_obb traversal.  Masks
        # only remove visits, never reorder them, so every query's candidate
        # order is this sequence filtered by the candidate mask.
        order: List[int] = []
        stack = [0] if num_nodes else []
        while stack:
            node = stack.pop()
            kids = children[node]
            if kids:
                stack.extend(kids)
            else:
                order.extend(entries[node])
        return FlatRTree(
            unit_lo=np.asarray(lo_rows, dtype=float),
            unit_hi=np.asarray(hi_rows, dtype=float),
            children=tuple(tuple(c) for c in children),
            entries=tuple(tuple(e) for e in entries),
            num_nodes=num_nodes,
            parents=parents,
            entry_leaf=entry_leaf,
            entry_order=np.asarray(order, dtype=np.intp),
        )

    def batch_query_counts(self, node_aabb: np.ndarray, node_obb: np.ndarray,
                           entry_aabb: np.ndarray, entry_obb: np.ndarray):
        """Traversal statistics for a whole batch of queries at once.

        Args:
            node_aabb / node_obb: ``(R, N)`` stage-1 masks of every query row
                against every node MBR (AABB-AABB prefilter, AABB-OBB SAT).
            entry_aabb / entry_obb: ``(R, M)`` same masks against the leaf
                entry boxes, indexed by obstacle id.

        Returns ``(n_aabb, n_obb, candidates)``: per-row counts of the
        AABB-AABB and AABB-OBB tests a scalar ``query_obb`` traversal would
        perform, and the ``(R, M)`` candidate mask (entries reaching the
        second stage).  A node is visited iff its parent is visited and
        passes both masks (the export is breadth-first, so parents precede
        children in index order); an entry is considered iff its leaf is
        visited and passes.
        """
        rows = node_aabb.shape[0]
        visited = np.empty((rows, self.num_nodes), dtype=bool)
        visited[:, 0] = True
        node_pass = node_aabb & node_obb
        for node in range(1, self.num_nodes):
            parent = self.parents[node]
            visited[:, node] = visited[:, parent] & node_pass[:, parent]
        considered = visited[:, self.entry_leaf] & node_pass[:, self.entry_leaf]
        considered_aabb = considered & entry_aabb
        candidates = considered_aabb & entry_obb
        n_aabb = visited.sum(axis=1) + considered.sum(axis=1)
        n_obb = (visited & node_aabb).sum(axis=1) + considered_aabb.sum(axis=1)
        return n_aabb, n_obb, candidates

    def replay(self, passes, counter=None, dim: Optional[int] = None,
               count_aabb_aabb: bool = True) -> List[int]:
        """Re-run ``RTree.query_obb``'s traversal over a precomputed mask.

        Args:
            passes: callable ``passes(unit) -> (aabb_ok, obb_ok)`` reading
                the batch masks; ``obb_ok`` is only consulted when
                ``aabb_ok`` is True (mirroring the scalar short-circuit).
            counter: operation counter; receives exactly the events the
                scalar traversal would record, in aggregate form.
            dim: workspace dimension for the counter records.
            count_aabb_aabb: False when the caller had no prefilter AABB
                (the scalar path then skips the interval test).

        Returns the obstacle indices in the scalar traversal's hit order.
        """
        if self.num_nodes == 0:
            return []
        hits: List[int] = []
        n_aabb = 0
        n_obb = 0
        stack = [0]
        while stack:
            node = stack.pop()
            aabb_ok, obb_ok = passes(node)
            if count_aabb_aabb:
                n_aabb += 1
            if not aabb_ok:
                continue
            n_obb += 1
            if not obb_ok:
                continue
            kids = self.children[node]
            if kids:
                stack.extend(kids)
            else:
                for idx in self.entries[node]:
                    unit = self.num_nodes + idx
                    e_aabb, e_obb = passes(unit)
                    if count_aabb_aabb:
                        n_aabb += 1
                    if not e_aabb:
                        continue
                    n_obb += 1
                    if e_obb:
                        hits.append(idx)
        if counter is not None:
            if count_aabb_aabb and n_aabb:
                counter.record("sat_aabb_aabb", dim=dim, n=n_aabb)
            if n_obb:
                counter.record("sat_aabb_obb", dim=dim, n=n_obb)
        return hits
