"""Vectorized batch geometry kernels: one call, many boxes.

Each kernel evaluates one SAT predicate for a whole batch of box pairs in a
single stacked-ndarray pass.  The arithmetic deliberately mirrors
:mod:`repro.geometry.sat` operation for operation — same change-of-basis
products, same ``_EPS`` bias, same corner projections — so the boolean
results agree with the scalar reference on every input (a property-tested
invariant), not merely "up to tolerance".  The scalar loops early-exit at
the first separating axis; SAT's verdict is independent of axis order, so
evaluating all axes and reducing yields identical booleans.

Shapes follow two conventions:

* ``*_grid`` kernels take ``R`` left rows and ``M`` right rows and return an
  ``(R, M)`` boolean matrix (every robot body row against every obstacle).
* ``*_pairs`` kernels take matched ``(P, ...)`` rows and return ``(P,)``
  booleans (gathered survivor pairs of the two-stage funnel).

Internally every kernel broadcasts over arbitrary leading dimensions, so
the grid functions are thin wrappers that insert axes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.sat import _EPS

__all__ = [
    "aabb_aabb_grid",
    "aabb_obb_grid",
    "aabb_obb_pairs",
    "edge_aabb_obb_grid",
    "edge_obb_obb_grid",
    "edge_two_stage_counts",
    "masked_aabb_obb_grid",
    "obb_obb_grid",
    "obb_obb_pairs",
    "nearest_index",
    "radius_mask",
    "segment_first_hit",
    "segment_prefix_totals",
]


# --------------------------------------------------------------------- AABBs


def aabb_aabb_grid(a_lo: np.ndarray, a_hi: np.ndarray,
                   b_lo: np.ndarray, b_hi: np.ndarray) -> np.ndarray:
    """Interval-overlap SAT of ``R`` boxes against ``M`` boxes: ``(R, M)``."""
    a_lo, a_hi = np.asarray(a_lo, dtype=float), np.asarray(a_hi, dtype=float)
    b_lo, b_hi = np.asarray(b_lo, dtype=float), np.asarray(b_hi, dtype=float)
    separated = (a_lo[:, None, :] > b_hi[None, :, :]) | (
        b_lo[None, :, :] > a_hi[:, None, :]
    )
    return ~separated.any(axis=-1)


# ----------------------------------------------------------------- OBB / OBB

# Flattened (i, j) index grids for the 9 edge-cross axes of the 3D SAT,
# replicating the scalar loop's (i1, i2) = (i+1, i+2) mod 3 pattern.
_I = np.repeat(np.arange(3), 3)
_J = np.tile(np.arange(3), 3)
_I1, _I2 = (_I + 1) % 3, (_I + 2) % 3
_J1, _J2 = (_J + 1) % 3, (_J + 2) % 3


def _sat_obb_obb_3d(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """Ericson's 15-axis OBB-OBB SAT over broadcast leading dimensions.

    Inputs broadcast to a common leading shape ``L``; centres/halves are
    ``L + (3,)``, rotations ``L + (3, 3)``.  Returns boolean ``L``.
    """
    # Rotation expressing b in a's frame: rot[i, j] = sum_k aR[k,i] bR[k,j].
    rot = np.einsum("...ki,...kj->...ij", a_r, b_r)
    # Translation in a's frame.
    t = np.einsum("...ki,...k->...i", a_r, b_c - a_c)
    abs_rot = np.abs(rot) + _EPS

    # Axes L = A0, A1, A2 (a's face normals).
    rb_face = np.einsum("...ij,...j->...i", abs_rot, b_h)
    sep = (np.abs(t) > a_h + rb_face).any(axis=-1)

    # Axes L = B0, B1, B2 (b's face normals).
    ra_face = np.einsum("...ij,...i->...j", abs_rot, a_h)
    t_proj = np.einsum("...ij,...i->...j", rot, t)
    sep |= (np.abs(t_proj) > ra_face + b_h).any(axis=-1)

    # Axes L = Ai x Bj: gather the scalar loop's index pattern in one shot.
    ra3 = a_h[..., _I1] * abs_rot[..., _I2, _J] + a_h[..., _I2] * abs_rot[..., _I1, _J]
    rb3 = b_h[..., _J1] * abs_rot[..., _I, _J2] + b_h[..., _J2] * abs_rot[..., _I, _J1]
    dist3 = np.abs(t[..., _I2] * rot[..., _I1, _J] - t[..., _I1] * rot[..., _I2, _J])
    sep |= (dist3 > ra3 + rb3).any(axis=-1)
    return ~sep


# Corner sign pattern of OBB.corners(): bit d of corner c selects +/- axis d.
_CORNER_SIGNS_2D = np.array(
    [[1.0 if (c >> d) & 1 else -1.0 for d in range(2)] for c in range(4)]
)


def _corners_2d(c, h, r) -> np.ndarray:
    """World corners of 2D OBBs over leading dims: ``L + (4, 2)``.

    Same sign ordering and arithmetic as :meth:`repro.geometry.obb.OBB.
    corners` (``center + R @ (signs * half)``); the matrix product is
    written out as its two-term sum, which matches the einsum accumulation
    bit-for-bit while avoiding its strided-iteration dispatch cost.
    """
    local = _CORNER_SIGNS_2D * h[..., None, :]
    rotated = (
        r[..., None, :, 0] * local[..., :, 0, None]
        + r[..., None, :, 1] * local[..., :, 1, None]
    )
    return c[..., None, :] + rotated


def _proj_2d(corners, axes) -> np.ndarray:
    """Project corner sets on frame axes: ``proj[..., c, k] = corners[...,
    c, :] @ (column k of axes)`` as an explicit two-term sum (bit-identical
    to the einsum contraction, several times faster on broadcast operands).
    """
    return (
        corners[..., :, 0, None] * axes[..., None, 0, :]
        + corners[..., :, 1, None] * axes[..., None, 1, :]
    )


def _interval_sep_2d(proj_a, proj_b) -> np.ndarray:
    """Per-axis interval-overlap separation over corner projections."""
    a_min, a_max = proj_a.min(axis=-2), proj_a.max(axis=-2)
    b_min, b_max = proj_b.min(axis=-2), proj_b.max(axis=-2)
    return ((a_max < b_min - _EPS) | (b_max < a_min - _EPS)).any(axis=-1)


def _sat_obb_obb_2d(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """4-axis corner-projection SAT in 2D over broadcast leading dims.

    Mirrors ``repro.geometry.sat._obb_obb_2d``: project both corner sets on
    each box's two frame axes (the rows of ``R.T``, i.e. the columns of
    ``R``) and test interval overlap with the ``_EPS`` slack.
    """
    corners_a = _corners_2d(a_c, a_h, a_r)     # L + (4, 2)
    corners_b = _corners_2d(b_c, b_h, b_r)
    sep = None
    for axes in (a_r, b_r):
        s = _interval_sep_2d(_proj_2d(corners_a, axes), _proj_2d(corners_b, axes))
        sep = s if sep is None else (sep | s)
    return ~sep


def _sat_aabb_obb_2d(a_c, a_h, b_c, b_h, b_r) -> np.ndarray:
    """2D AABB-OBB SAT: the identity-frame specialisation.

    The scalar reference feeds the AABB through the corner-projection test
    with an identity rotation; projecting any corner set on the identity
    columns reproduces the corner coordinates exactly (the extra products
    contribute only signed zeros, invisible to the interval comparisons),
    and the AABB's own corners are ``center + signs * half`` verbatim.
    Skipping those no-op contractions halves the kernel's heavy work.
    """
    corners_a = a_c[..., None, :] + _CORNER_SIGNS_2D * a_h[..., None, :]
    corners_b = _corners_2d(b_c, b_h, b_r)
    # Axes of a: the world axes — projections are the corner coordinates.
    sep = _interval_sep_2d(corners_a, corners_b)
    # Axes of b: genuine change of basis for both corner sets.
    sep |= _interval_sep_2d(_proj_2d(corners_a, b_r), _proj_2d(corners_b, b_r))
    return ~sep


def _sat_obb_obb(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    if a_c.shape[-1] == 3:
        return _sat_obb_obb_3d(a_c, a_h, a_r, b_c, b_h, b_r)
    return _sat_obb_obb_2d(a_c, a_h, a_r, b_c, b_h, b_r)


def obb_obb_grid(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """Exact OBB-OBB SAT of ``R`` boxes against ``M`` boxes: ``(R, M)`` bool."""
    return _sat_obb_obb(
        np.asarray(a_c, dtype=float)[:, None, :],
        np.asarray(a_h, dtype=float)[:, None, :],
        np.asarray(a_r, dtype=float)[:, None, :, :],
        np.asarray(b_c, dtype=float)[None, :, :],
        np.asarray(b_h, dtype=float)[None, :, :],
        np.asarray(b_r, dtype=float)[None, :, :, :],
    )


def obb_obb_pairs(a_c, a_h, a_r, b_c, b_h, b_r) -> np.ndarray:
    """Exact OBB-OBB SAT of ``P`` matched pairs: ``(P,)`` bool."""
    return _sat_obb_obb(
        np.asarray(a_c, dtype=float), np.asarray(a_h, dtype=float),
        np.asarray(a_r, dtype=float), np.asarray(b_c, dtype=float),
        np.asarray(b_h, dtype=float), np.asarray(b_r, dtype=float),
    )


# ---------------------------------------------------------------- AABB / OBB


def _sat_aabb_obb_3d(a_c, a_h, b_c, b_h, b_r) -> np.ndarray:
    """15-axis AABB-OBB SAT over broadcast leading dims (3D fast path).

    The scalar ``aabb_intersects_obb`` feeds the AABB into the OBB-OBB test
    as an identity-rotation box, which collapses the change-of-basis product
    to ``b_r`` and the frame-local translation to ``b_c - a_c`` exactly
    (multiplying by the identity adds only signed zeros).  This kernel
    starts from those collapsed values, skipping the two big contractions —
    the same cost advantage the first-stage hardware check exploits.
    """
    t = b_c - a_c
    abs_rot = np.abs(b_r) + _EPS

    # Axes L = A0, A1, A2 (the world axes).
    rb_face = np.einsum("...ij,...j->...i", abs_rot, b_h)
    sep = (np.abs(t) > a_h + rb_face).any(axis=-1)

    # Axes L = B0, B1, B2 (the OBB's face normals).
    ra_face = np.einsum("...ij,...i->...j", abs_rot, a_h)
    t_proj = np.einsum("...ij,...i->...j", b_r, t)
    sep |= (np.abs(t_proj) > ra_face + b_h).any(axis=-1)

    # Axes L = Ai x Bj.
    ra3 = a_h[..., _I1] * abs_rot[..., _I2, _J] + a_h[..., _I2] * abs_rot[..., _I1, _J]
    rb3 = b_h[..., _J1] * abs_rot[..., _I, _J2] + b_h[..., _J2] * abs_rot[..., _I, _J1]
    dist3 = np.abs(t[..., _I2] * b_r[..., _I1, _J] - t[..., _I1] * b_r[..., _I2, _J])
    sep |= (dist3 > ra3 + rb3).any(axis=-1)
    return ~sep


def _aabb_as_obb(lo, hi):
    """Centre / half extents of AABB rows (the identity frame is implicit)."""
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    center = (lo + hi) / 2.0
    half = (hi - lo) / 2.0
    return center, half


def aabb_obb_grid(box_lo, box_hi, b_c, b_h, b_r) -> np.ndarray:
    """First-stage AABB-OBB SAT: ``M`` boxes against ``R`` OBBs: ``(R, M)``.

    The AABB is the *a* operand (identity rotation), exactly like the scalar
    ``aabb_intersects_obb``.  3D uses the dedicated no-basis-change kernel;
    2D routes through the corner-projection test with an identity frame
    (projecting on the identity columns adds only signed zeros).
    """
    b_c = np.asarray(b_c, dtype=float)[:, None, :]
    b_h = np.asarray(b_h, dtype=float)[:, None, :]
    b_r = np.asarray(b_r, dtype=float)[:, None, :, :]
    center, half = _aabb_as_obb(box_lo, box_hi)
    if center.shape[-1] == 3:
        return _sat_aabb_obb_3d(center[None, :, :], half[None, :, :], b_c, b_h, b_r)
    return _sat_aabb_obb_2d(center[None, :, :], half[None, :, :], b_c, b_h, b_r)


def aabb_obb_pairs(box_lo, box_hi, b_c, b_h, b_r) -> np.ndarray:
    """First-stage AABB-OBB SAT over ``P`` matched pairs: ``(P,)`` bool."""
    b_c = np.asarray(b_c, dtype=float)
    b_h = np.asarray(b_h, dtype=float)
    b_r = np.asarray(b_r, dtype=float)
    center, half = _aabb_as_obb(box_lo, box_hi)
    if center.shape[-1] == 3:
        return _sat_aabb_obb_3d(center, half, b_c, b_h, b_r)
    return _sat_aabb_obb_2d(center, half, b_c, b_h, b_r)


# ------------------------------------------------------ edge-ladder segments
#
# Whole-edge validation evaluates the SAT grids for every interpolated
# waypoint of *several* movements in one stacked pass, then reduces each
# movement's contiguous segment of the flat mask to the scalar loop's
# early-exit statistics.  The reductions below are shared by every checker
# variant; the ``edge_*`` wrappers fuse grid + reduction for the brute
# checkers, and :func:`edge_two_stage_counts` is the two-stage funnel's
# per-edge traversal reduction.


def segment_first_hit(flat, offsets):
    """Per-segment early-exit scan statistics over a flat boolean mask.

    ``offsets`` (length ``E + 1``) bounds ``E`` contiguous segments of
    ``flat``.  For each segment this returns whether it contains any hit
    and how many entries a scalar left-to-right scan visits: through the
    first ``True``, or the whole segment when clear — the per-segment
    equivalent of the checkers' aggregate ``argmax`` replay, computed for
    all segments with one ``flatnonzero`` + ``searchsorted`` pass.

    Returns ``(hits, visited)``: boolean ``(E,)`` and int64 ``(E,)``.
    """
    flat = np.asarray(flat).ravel()
    offsets = np.asarray(offsets, dtype=np.intp)
    seg_len = (offsets[1:] - offsets[:-1]).astype(np.int64)
    hit_positions = np.flatnonzero(flat)
    if hit_positions.size == 0:
        return np.zeros(len(seg_len), dtype=bool), seg_len
    cuts = np.searchsorted(hit_positions, offsets)
    hits = cuts[1:] > cuts[:-1]
    first = hit_positions[np.minimum(cuts[:-1], hit_positions.size - 1)]
    visited = np.where(hits, first - offsets[:-1] + 1, seg_len)
    return hits, visited.astype(np.int64)


def segment_prefix_totals(values, starts, lengths):
    """Sums of ``values[starts[e] : starts[e] + lengths[e]]`` per segment.

    One global cumulative sum, so the cost is independent of the number of
    segments.  ``values`` must be integer-valued (traversal counts); the
    result is exact int64.
    """
    values = np.asarray(values)
    cum = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=cum[1:])
    starts = np.asarray(starts, dtype=np.intp)
    lengths = np.asarray(lengths, dtype=np.intp)
    return cum[starts + lengths] - cum[starts]


def edge_obb_obb_grid(a_c, a_h, a_r, a_lo, a_hi,
                      b_c, b_h, b_r, b_lo, b_hi, row_offsets):
    """Whole-edge brute OBB-OBB SAT: broadphased grid + per-edge reduction.

    ``a_*`` hold the body boxes of every waypoint of every edge (row
    blocks bounded by ``row_offsets``, in body-row units) with their
    derived world AABBs; ``b_*`` the obstacle set and its AABBs.  The
    cheap interval test prunes the grid first — an enclosing-AABB miss
    proves OBB separation, so running the exact SAT only on the surviving
    pairs reproduces the full grid's booleans bit-for-bit at a fraction
    of the arithmetic.  Returns :func:`segment_first_hit` over the scalar
    (waypoint, body, obstacle) iteration order, with ``visited`` counting
    SAT tests.
    """
    mask = aabb_aabb_grid(a_lo, a_hi, b_lo, b_hi)
    rows, cols = np.nonzero(mask)
    if rows.size:
        mask[rows, cols] = obb_obb_pairs(
            a_c[rows], a_h[rows], a_r[rows], b_c[cols], b_h[cols], b_r[cols]
        )
    flat_offsets = np.asarray(row_offsets, dtype=np.intp) * mask.shape[1]
    return segment_first_hit(mask, flat_offsets)


def edge_aabb_obb_grid(box_lo, box_hi, b_c, b_h, b_r, b_lo, b_hi, row_offsets):
    """Whole-edge brute AABB-OBB SAT: broadphased grid + per-edge reduction.

    ``b_*`` are the body boxes (edge row blocks bounded by
    ``row_offsets``) with their derived world AABBs; ``box_lo/hi`` the
    obstacle AABBs.  Same broadphase-then-exact contract as
    :func:`edge_obb_obb_grid` — a body whose AABB misses the obstacle box
    cannot intersect it, so the exact SAT runs only on surviving pairs.
    """
    mask = aabb_aabb_grid(b_lo, b_hi, box_lo, box_hi)
    rows, cols = np.nonzero(mask)
    if rows.size:
        mask[rows, cols] = aabb_obb_pairs(
            box_lo[cols], box_hi[cols], b_c[rows], b_h[rows], b_r[rows]
        )
    flat_offsets = np.asarray(row_offsets, dtype=np.intp) * mask.shape[1]
    return segment_first_hit(mask, flat_offsets)


def masked_aabb_obb_grid(box_lo, box_hi, b_c, b_h, b_r, prefilter):
    """AABB-OBB SAT grid evaluated only where ``prefilter`` is True.

    ``prefilter`` is an ``(R, M)`` boolean matrix (OBB rows x box
    columns); pairs outside it come back False.  Exact wherever the
    caller only consumes the result conjoined with ``prefilter`` — the
    two-stage funnel's short-circuit, where the AABB-AABB stage guards
    the AABB-OBB stage.
    """
    out = np.zeros(prefilter.shape, dtype=bool)
    rows, cols = np.nonzero(prefilter)
    if rows.size:
        out[rows, cols] = aabb_obb_pairs(
            box_lo[cols], box_hi[cols], b_c[rows], b_h[rows], b_r[rows]
        )
    return out


def edge_two_stage_counts(row_hit, n_aabb, n_obb, survivors, row_offsets):
    """Per-edge two-stage traversal totals with the scalar early exit.

    Inputs are per-body-row statistics of the stacked R-tree traversal
    (hit flag, stage-1 AABB-AABB and AABB-OBB test counts, surviving
    candidates); ``row_offsets`` bounds each edge's contiguous row block.
    Returns ``(hits, dones, aabb_tot, obb_tot, sur_tot, last_rows)``:
    per-edge hit verdicts, the number of body rows the scalar loop
    processes (through the first hitting row), the stage-1 totals over
    those rows, and the index of the last processed row (the hitting row
    when ``hits[e]``).
    """
    hits, dones = segment_first_hit(row_hit, row_offsets)
    starts = np.asarray(row_offsets[:-1], dtype=np.intp)
    aabb_tot = segment_prefix_totals(n_aabb, starts, dones)
    obb_tot = segment_prefix_totals(n_obb, starts, dones)
    sur_tot = segment_prefix_totals(survivors, starts, dones)
    last_rows = starts + dones - 1
    return hits, dones, aabb_tot, obb_tot, sur_tot, last_rows


# ------------------------------------------------------- distance reductions


def nearest_index(points: np.ndarray, query: np.ndarray):
    """Index and distance of the row of ``points`` nearest to ``query``.

    One vectorized norm reduction over the SoA coordinate matrix; ties
    resolve to the lowest index, matching a sequential strict-``<`` scan.
    """
    diffs = points - query
    d_sq = np.einsum("nd,nd->n", diffs, diffs)
    idx = int(np.argmin(d_sq))
    return idx, float(np.sqrt(d_sq[idx]))


def radius_mask(points: np.ndarray, query: np.ndarray, radius: float):
    """Squared distances plus the indices within ``radius`` of ``query``."""
    diffs = points - query
    d_sq = np.einsum("nd,nd->n", diffs, diffs)
    return d_sq, np.flatnonzero(d_sq <= radius * radius)
