"""``repro.kernels``: batch geometry / distance kernels for the hot paths.

MOPED's algorithmic contributions (two-stage collision, approximated
neighborhoods, O(1) insertion) decide *which* geometric tests run; this
package decides *how fast* they run.  Following the VAMP / pRRTC insight —
batch the geometry across obstacles, waypoints, and nodes without changing
the algorithm — it provides:

* :mod:`repro.kernels.batch` — vectorized SAT and distance kernels that
  evaluate one configuration (or a whole motion's waypoints) against every
  obstacle in a single stacked-ndarray pass.
* :mod:`repro.kernels.reference` — the scalar per-row golden
  implementations, kept for equivalence tests and benchmarking.
* :mod:`repro.kernels.tensors` — the stacked containers
  (:class:`ObstacleTensors`, :class:`BodyBatch`, :class:`FlatRTree`) the
  kernels consume, precomputed once per environment.

The collision checkers select a backend by name (``"batch"`` is the
default; ``"reference"`` routes through the original per-object scalar
code).  Both produce bit-identical planning decisions *and* bit-identical
:class:`~repro.core.counters.OpCounter` totals: the batch path computes its
masks wholesale, then *replays* the scalar control flow over the booleans
so every early exit charges exactly the operations the hardware cost model
expects.  ``python -m repro.bench`` measures the speedup and records it in
``BENCH_kernels.json``.
"""

from __future__ import annotations

from repro.kernels import batch, reference
from repro.kernels.tensors import BodyBatch, FlatRTree, ObstacleTensors

#: Kernel backends selectable by :class:`~repro.core.config.PlannerConfig`.
#: ``"batch"`` uses the vectorized kernels; ``"reference"`` keeps the
#: original scalar per-object code paths (the equivalence baseline).
KERNEL_BACKENDS = ("batch", "reference")


def get_backend(name: str):
    """Kernel function namespace for ``name`` (``"batch"`` | ``"reference"``)."""
    if name == "batch":
        return batch
    if name == "reference":
        return reference
    raise KeyError(f"unknown kernel backend {name!r}; available: {KERNEL_BACKENDS}")


__all__ = [
    "BodyBatch",
    "FlatRTree",
    "KERNEL_BACKENDS",
    "ObstacleTensors",
    "batch",
    "get_backend",
    "reference",
]
