"""CLI for the benchmark harness: ``python -m repro.bench``.

Writes ``BENCH_kernels.json`` (see :mod:`repro.bench` for the schema) and,
with ``--check``, gates against the committed baseline so CI fails when a
kernel's batch time regresses beyond the allowed factor.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    REGRESSION_FACTOR,
    check_faults_overhead,
    compare_to_baseline,
    load_report,
    run_benchmarks,
    save_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark batch kernels and planner runs against the scalar reference.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep + single end-to-end case (the CI smoke mode)",
    )
    parser.add_argument(
        "--skip-e2e", action="store_true",
        help="kernel microbenchmarks only, no full planner runs",
    )
    parser.add_argument(
        "--output", default="BENCH_kernels.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against --baseline and exit 1 on kernel regressions",
    )
    parser.add_argument(
        "--baseline", default="benchmarks/BENCH_baseline.json",
        help="committed baseline report for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--factor", type=float, default=REGRESSION_FACTOR,
        help="allowed slowdown factor vs baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--rca-output", default="BENCH_rca.json", metavar="PATH",
        help="where a failed --check writes the repro.obs.rca drill-down "
             "naming the regressed slice (default: %(default)s; '' to skip)",
    )
    parser.add_argument("--seed", type=int, default=0, help="data-generation seed")
    parser.add_argument(
        "--wave", action="store_true",
        help="also bench the wavefront planner (asserts wave/scalar bit-equality)",
    )
    parser.add_argument(
        "--wave-width", type=int, default=8,
        help="wave width W for --wave runs (default: %(default)s)",
    )
    parser.add_argument(
        "--edge", action="store_true",
        help="also bench whole-edge validation against the per-configuration "
             "wave path (asserts verdict and counter bit-equality)",
    )
    parser.add_argument(
        "--connect", action="store_true",
        help="also bench bidirectional RRT-Connect against wave RRT* on "
             "feasibility queries (asserts connect bit-reproducibility "
             "across wave widths and repeats)",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="also run the portfolio racing smoke (race two planners "
             "through a real pool, assert winner + cancelled-loser "
             "accounting)",
    )
    parser.add_argument(
        "--faults-gate", action="store_true",
        help="also bench the fault-injection hooks (disabled vs inert "
             "injector, interleaved) and exit 1 if the disabled-path "
             "overhead budget (<1%%) is exceeded",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(
        quick=args.quick, skip_e2e=args.skip_e2e, seed=args.seed,
        wave=args.wave, wave_width=args.wave_width, faults=args.faults_gate,
        edge=args.edge, connect=args.connect, portfolio=args.portfolio,
    )
    save_report(report, args.output)

    print(f"wrote {args.output} ({report['mode']} mode)")
    for entry in report["kernels"]:
        print(
            f"  kernel {entry['kernel']:16s} dim={entry['dim']} "
            f"size={entry['size']:>9s}  batch={entry['batch_s'] * 1e6:9.1f}us "
            f"reference={entry['reference_s'] * 1e6:10.1f}us  "
            f"speedup={entry['speedup']:6.1f}x"
        )
    for entry in report["end_to_end"]:
        print(
            f"  e2e    {entry['case']:22s} batch={entry['batch_s']:.2f}s "
            f"reference={entry['reference_s']:.2f}s  "
            f"speedup={entry['speedup']:.2f}x  (bit-identical: {entry['equivalent']})"
        )
    for entry in report["wave"]:
        caches = entry.get("cache") or {}
        rates = " ".join(
            f"{name}={stats.get('hit_rate', 0.0):.2f}"
            for name, stats in sorted(caches.items())
        )
        print(
            f"  wave   {entry['case']:22s} W={entry['wave_width']:<3d} "
            f"scalar={entry['scalar_s']:.3f}s wave={entry['wave_s']:.3f}s  "
            f"speedup={entry['speedup_vs_scalar']:.2f}x  "
            f"occ={entry['wave_occupancy']:.2f}  "
            f"cache-hit[{rates}]  (bit-identical: {entry['equivalent']})"
        )

    for entry in report.get("edge", []):
        print(
            f"  edge   {entry['case']:22s} W={entry['wave_width']:<3d} "
            f"pr4={entry['pr4_us_per_edge']:7.1f}us/edge "
            f"edge={entry['edge_us_per_edge']:6.1f}us/edge "
            f"cached={entry['cached_us_per_edge']:5.1f}us/edge  "
            f"speedup={entry['speedup']:.2f}x  "
            f"(bit-identical: {entry['equivalent']})"
        )

    for entry in report.get("connect", []):
        print(
            f"  connect {entry['case']:21s} W={entry['wave_width']:<3d} "
            f"rrtstar={entry['rrtstar_s']:.3f}s "
            f"connect={entry['connect_s']:.3f}s  "
            f"speedup={entry['speedup']:.2f}x  "
            f"iters={entry['connect_iterations']}/{entry['rrtstar_iterations']}  "
            f"(bit-reproducible: {entry['equivalent']})"
        )

    portfolio = report.get("portfolio")
    if portfolio:
        wins = " ".join(
            f"{name}={count}" for name, count in sorted(portfolio["wins"].items())
        )
        print(
            f"  portfolio {portfolio['case']:19s} "
            f"race={'+'.join(portfolio['planners'])} "
            f"jobs={portfolio['jobs']} workers={portfolio['workers']}  "
            f"wins[{wins}]  {portfolio['elapsed_s']:.2f}s  "
            f"(losers terminal: {portfolio['equivalent']})"
        )

    faults = report.get("faults")
    if faults:
        print(
            f"  faults {faults['case']:22s} disabled={faults['disabled_s']:.3f}s "
            f"inert={faults['inert_s']:.3f}s  "
            f"overhead={faults['overhead_pct']:+.2f}%  "
            f"(bit-identical: {faults['equivalent']})"
        )
        gate_failures = check_faults_overhead(faults)
        if gate_failures:
            for message in gate_failures:
                print(f"  {message}", file=sys.stderr)
            return 1
        print("faults gate passed (disabled injection hooks within <1% budget)")

    if args.check:
        try:
            baseline = load_report(args.baseline)
        except FileNotFoundError:
            print(f"baseline {args.baseline} not found; cannot --check", file=sys.stderr)
            return 2
        failures = compare_to_baseline(report, baseline, factor=args.factor)
        if failures:
            print("kernel perf regressions detected:", file=sys.stderr)
            for message in failures:
                print(f"  {message}", file=sys.stderr)
            # Name the slice: drill the baseline-vs-candidate delta down to
            # the attribute combination that moved it, and leave the
            # machine report next to the bench output for CI to upload.
            try:
                from repro.obs.rca import analyze_bench_reports

                rca = analyze_bench_reports(baseline, report)
                print(rca.render(), file=sys.stderr)
                rca_path = args.rca_output
                if rca_path:
                    import json as _json
                    import pathlib as _pathlib

                    _pathlib.Path(rca_path).write_text(
                        _json.dumps(rca.to_dict(), indent=2)
                    )
                    print(f"rca drill-down written to {rca_path}",
                          file=sys.stderr)
            except Exception as exc:  # the gate verdict must never be masked
                print(f"rca drill-down unavailable: {exc}", file=sys.stderr)
            return 1
        print(f"perf check passed (no kernel > {args.factor:.1f}x slower than baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
