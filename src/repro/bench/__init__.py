"""``repro.bench``: kernel and end-to-end benchmark harness.

Times the vectorized kernels of :mod:`repro.kernels.batch` against the
scalar golden implementations of :mod:`repro.kernels.reference`, and whole
planner runs with ``kernels="batch"`` against ``kernels="reference"``,
asserting bit-identical results while measuring the speedup.

Run it as ``python -m repro.bench``; results land in ``BENCH_kernels.json``
(a stable, CI-diffable schema).  ``--check`` compares against a committed
baseline (``benchmarks/BENCH_baseline.json``) and exits non-zero when any
kernel's batch time regresses by more than the allowed factor, which is how
CI guards the hot paths.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import moped_config
from repro.core.robots import get_robot
from repro.core.rrtstar import plan
from repro.geometry.rotations import random_rotation_2d, random_rotation_3d
from repro.kernels import batch, reference
from repro.workloads.generator import random_task

SCHEMA_VERSION = 1

#: Default regression gate: fail when a kernel's batch time exceeds
#: ``REGRESSION_FACTOR`` times its committed baseline time.
REGRESSION_FACTOR = 2.0


# --------------------------------------------------------------------- timing


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _random_boxes(rng: np.random.Generator, n: int, dim: int):
    lo = rng.uniform(0.0, 90.0, size=(n, dim))
    hi = lo + rng.uniform(0.5, 10.0, size=(n, dim))
    return lo, hi


def _random_obbs(rng: np.random.Generator, n: int, dim: int):
    centers = rng.uniform(0.0, 100.0, size=(n, dim))
    halves = rng.uniform(0.5, 6.0, size=(n, dim))
    make = random_rotation_2d if dim == 2 else random_rotation_3d
    rotations = np.stack([make(rng) for _ in range(n)])
    return centers, halves, rotations


# -------------------------------------------------------------- kernel sweeps


def _kernel_cases(quick: bool, rng: np.random.Generator) -> List[dict]:
    """One entry per (kernel, dim, size) point of the sweep."""
    grid_sizes = [(18, 32)] if quick else [(18, 8), (18, 32), (36, 48)]
    pair_sizes = [256] if quick else [64, 256, 1024]
    point_sizes = [1000] if quick else [1000, 5000]
    cases: List[dict] = []

    for dim in (2, 3):
        for rows, cols in grid_sizes:
            a_lo, a_hi = _random_boxes(rng, rows, dim)
            b_lo, b_hi = _random_boxes(rng, cols, dim)
            cases.append(
                dict(kernel="aabb_aabb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=(a_lo, a_hi, b_lo, b_hi))
            )
            obs = _random_obbs(rng, cols, dim)
            cases.append(
                dict(kernel="aabb_obb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=(a_lo, a_hi) + obs)
            )
            bodies = _random_obbs(rng, rows, dim)
            cases.append(
                dict(kernel="obb_obb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=bodies + obs)
            )
        for pairs in pair_sizes:
            a = _random_obbs(rng, pairs, dim)
            b = _random_obbs(rng, pairs, dim)
            cases.append(
                dict(kernel="obb_obb_pairs", dim=dim, size=str(pairs), args=a + b)
            )
            lo, hi = _random_boxes(rng, pairs, dim)
            cases.append(
                dict(kernel="aabb_obb_pairs", dim=dim, size=str(pairs),
                     args=(lo, hi) + b)
            )

    for dim in (3, 6):
        for n in point_sizes:
            points = rng.uniform(-3.0, 3.0, size=(n, dim))
            query = rng.uniform(-3.0, 3.0, size=dim)
            cases.append(
                dict(kernel="nearest_index", dim=dim, size=str(n),
                     args=(points, query))
            )
            cases.append(
                dict(kernel="radius_mask", dim=dim, size=str(n),
                     args=(points, query, 1.5))
            )
    return cases


def _results_equal(a, b) -> bool:
    """Golden check: exact for booleans/indices, ULP-tolerant for distances.

    The SAT kernels' boolean verdicts are bit-exact by contract; the distance
    kernels return raw floats whose vectorized accumulation order may differ
    from the scalar loop by a few ULPs, so those compare with a tolerance.
    """
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_results_equal(x, y) for x, y in zip(a, b))
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype == bool or np.issubdtype(a.dtype, np.integer):
        return bool(np.array_equal(a, b))
    return bool(np.allclose(a, b, rtol=1e-12, atol=1e-12))


def bench_kernels(quick: bool = False, seed: int = 0) -> List[Dict]:
    """Time every batch kernel against its scalar golden twin.

    Each case first asserts the two backends return identical values, then
    reports best-of-N wall times and the speedup.
    """
    rng = np.random.default_rng(seed)
    repeats = 3 if quick else 7
    records: List[Dict] = []
    for case in _kernel_cases(quick, rng):
        fast = getattr(batch, case["kernel"])
        gold = getattr(reference, case["kernel"])
        args = case["args"]
        if not _results_equal(fast(*args), gold(*args)):
            raise AssertionError(
                f"batch kernel {case['kernel']} (dim={case['dim']}, "
                f"size={case['size']}) disagrees with the scalar reference"
            )
        batch_s = _time(lambda: fast(*args), repeats)
        reference_s = _time(lambda: gold(*args), repeats)
        records.append(
            {
                "kernel": case["kernel"],
                "dim": case["dim"],
                "size": case["size"],
                "batch_s": batch_s,
                "reference_s": reference_s,
                "speedup": reference_s / batch_s if batch_s > 0 else float("inf"),
            }
        )
    return records


# --------------------------------------------------------------- end to end


#: End-to-end suite points: (label, robot, obstacles, variant).  The first
#: entry is the paper-suite configuration the acceptance gate tracks
#: (6-DoF rozum arm, 32 obstacles, full MOPED).
E2E_SUITE = (
    ("rozum/32obs/v4", "rozum", 32, "v4"),
    ("rozum/32obs/v1", "rozum", 32, "v1"),
    ("xarm7/32obs/v4", "xarm7", 32, "v4"),
    ("mobile2d/16obs/v4", "mobile2d", 16, "v4"),
)


def bench_end_to_end(quick: bool = False, seed: int = 3) -> List[Dict]:
    """Time full planner runs under both kernel backends.

    Asserts the two backends produce bit-identical paths, costs, and
    operation-counter totals before reporting wall times — a perf number for
    a run that diverged would be meaningless.
    """
    suite = E2E_SUITE[:1] if quick else E2E_SUITE
    samples = 200 if quick else 600
    records: List[Dict] = []
    for label, robot_name, num_obstacles, variant in suite:
        task = random_task(robot_name, num_obstacles, seed=seed)
        robot = get_robot(robot_name)
        results, times = {}, {}
        for backend in ("batch", "reference"):
            config = moped_config(variant, kernels=backend, max_samples=samples, seed=5)
            t0 = time.perf_counter()
            results[backend] = plan(robot, task, config)
            times[backend] = time.perf_counter() - t0
        fast, gold = results["batch"], results["reference"]
        same_path = len(fast.path) == len(gold.path) and all(
            np.array_equal(a, b) for a, b in zip(fast.path, gold.path)
        )
        if not same_path or fast.path_cost != gold.path_cost:
            raise AssertionError(f"{label}: batch and reference plans diverged")
        if fast.counter.to_dict() != gold.counter.to_dict():
            raise AssertionError(f"{label}: operation counters diverged")
        records.append(
            {
                "case": label,
                "robot": robot_name,
                "obstacles": num_obstacles,
                "variant": variant,
                "max_samples": samples,
                "batch_s": times["batch"],
                "reference_s": times["reference"],
                "speedup": times["reference"] / times["batch"],
                "path_cost": fast.path_cost,
                "num_nodes": fast.num_nodes,
                "equivalent": True,
            }
        )
    return records


# ------------------------------------------------------------------- report


def run_benchmarks(quick: bool = False, skip_e2e: bool = False, seed: int = 0) -> Dict:
    """Full harness: kernel sweeps plus end-to-end planner runs."""
    report = {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "kernels": bench_kernels(quick=quick, seed=seed),
        "end_to_end": [] if skip_e2e else bench_end_to_end(quick=quick),
    }
    return report


def save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    report: Dict,
    baseline: Dict,
    factor: float = REGRESSION_FACTOR,
) -> List[str]:
    """Regression check: returns one message per kernel slower than allowed.

    A kernel regresses when its batch time exceeds ``factor`` times the
    committed baseline's batch time for the same (kernel, dim, size) point.
    Points missing from either report are skipped — the gate only compares
    what both runs measured.
    """
    def key(entry: Dict):
        return (entry["kernel"], entry["dim"], entry["size"])

    base_index = {key(entry): entry for entry in baseline.get("kernels", [])}
    failures: List[str] = []
    for entry in report.get("kernels", []):
        base = base_index.get(key(entry))
        if base is None:
            continue
        if entry["batch_s"] > factor * base["batch_s"]:
            failures.append(
                f"{entry['kernel']} dim={entry['dim']} size={entry['size']}: "
                f"{entry['batch_s']:.6f}s vs baseline {base['batch_s']:.6f}s "
                f"(> {factor:.1f}x)"
            )
    return failures
