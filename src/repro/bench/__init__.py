"""``repro.bench``: kernel and end-to-end benchmark harness.

Times the vectorized kernels of :mod:`repro.kernels.batch` against the
scalar golden implementations of :mod:`repro.kernels.reference`, and whole
planner runs with ``kernels="batch"`` against ``kernels="reference"``,
asserting bit-identical results while measuring the speedup.

Run it as ``python -m repro.bench``; results land in ``BENCH_kernels.json``
(a stable, CI-diffable schema).  ``--check`` compares against a committed
baseline (``benchmarks/BENCH_baseline.json``) and exits non-zero when any
kernel's batch time regresses by more than the allowed factor, which is how
CI guards the hot paths.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.collision import make_checker
from repro.core.config import moped_config
from repro.core.connect import RRTConnectPlanner
from repro.core.counters import OpCounter
from repro.core.metrics import wave_occupancy
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner, plan
from repro.geometry.motion import interpolate_configs
from repro.geometry.rotations import random_rotation_2d, random_rotation_3d
from repro.kernels import batch, reference
from repro.workloads.generator import random_task

SCHEMA_VERSION = 1

#: Default regression gate: fail when a kernel's batch time exceeds
#: ``REGRESSION_FACTOR`` times its committed baseline time.
REGRESSION_FACTOR = 2.0


# --------------------------------------------------------------------- timing


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _random_boxes(rng: np.random.Generator, n: int, dim: int):
    lo = rng.uniform(0.0, 90.0, size=(n, dim))
    hi = lo + rng.uniform(0.5, 10.0, size=(n, dim))
    return lo, hi


def _random_obbs(rng: np.random.Generator, n: int, dim: int):
    centers = rng.uniform(0.0, 100.0, size=(n, dim))
    halves = rng.uniform(0.5, 6.0, size=(n, dim))
    make = random_rotation_2d if dim == 2 else random_rotation_3d
    rotations = np.stack([make(rng) for _ in range(n)])
    return centers, halves, rotations


# -------------------------------------------------------------- kernel sweeps


def _kernel_cases(quick: bool, rng: np.random.Generator) -> List[dict]:
    """One entry per (kernel, dim, size) point of the sweep."""
    grid_sizes = [(18, 32)] if quick else [(18, 8), (18, 32), (36, 48)]
    pair_sizes = [256] if quick else [64, 256, 1024]
    point_sizes = [1000] if quick else [1000, 5000]
    cases: List[dict] = []

    for dim in (2, 3):
        for rows, cols in grid_sizes:
            a_lo, a_hi = _random_boxes(rng, rows, dim)
            b_lo, b_hi = _random_boxes(rng, cols, dim)
            cases.append(
                dict(kernel="aabb_aabb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=(a_lo, a_hi, b_lo, b_hi))
            )
            obs = _random_obbs(rng, cols, dim)
            cases.append(
                dict(kernel="aabb_obb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=(a_lo, a_hi) + obs)
            )
            bodies = _random_obbs(rng, rows, dim)
            cases.append(
                dict(kernel="obb_obb_grid", dim=dim, size=f"{rows}x{cols}",
                     args=bodies + obs)
            )
        for pairs in pair_sizes:
            a = _random_obbs(rng, pairs, dim)
            b = _random_obbs(rng, pairs, dim)
            cases.append(
                dict(kernel="obb_obb_pairs", dim=dim, size=str(pairs), args=a + b)
            )
            lo, hi = _random_boxes(rng, pairs, dim)
            cases.append(
                dict(kernel="aabb_obb_pairs", dim=dim, size=str(pairs),
                     args=(lo, hi) + b)
            )

    for dim in (3, 6):
        for n in point_sizes:
            points = rng.uniform(-3.0, 3.0, size=(n, dim))
            query = rng.uniform(-3.0, 3.0, size=dim)
            cases.append(
                dict(kernel="nearest_index", dim=dim, size=str(n),
                     args=(points, query))
            )
            cases.append(
                dict(kernel="radius_mask", dim=dim, size=str(n),
                     args=(points, query, 1.5))
            )
    return cases


def _results_equal(a, b) -> bool:
    """Golden check: exact for booleans/indices, ULP-tolerant for distances.

    The SAT kernels' boolean verdicts are bit-exact by contract; the distance
    kernels return raw floats whose vectorized accumulation order may differ
    from the scalar loop by a few ULPs, so those compare with a tolerance.
    """
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_results_equal(x, y) for x, y in zip(a, b))
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype == bool or np.issubdtype(a.dtype, np.integer):
        return bool(np.array_equal(a, b))
    return bool(np.allclose(a, b, rtol=1e-12, atol=1e-12))


def bench_kernels(quick: bool = False, seed: int = 0) -> List[Dict]:
    """Time every batch kernel against its scalar golden twin.

    Each case first asserts the two backends return identical values, then
    reports best-of-N wall times and the speedup.
    """
    rng = np.random.default_rng(seed)
    repeats = 3 if quick else 7
    records: List[Dict] = []
    for case in _kernel_cases(quick, rng):
        fast = getattr(batch, case["kernel"])
        gold = getattr(reference, case["kernel"])
        args = case["args"]
        if not _results_equal(fast(*args), gold(*args)):
            raise AssertionError(
                f"batch kernel {case['kernel']} (dim={case['dim']}, "
                f"size={case['size']}) disagrees with the scalar reference"
            )
        batch_s = _time(lambda: fast(*args), repeats)
        reference_s = _time(lambda: gold(*args), repeats)
        records.append(
            {
                "kernel": case["kernel"],
                "dim": case["dim"],
                "size": case["size"],
                "batch_s": batch_s,
                "reference_s": reference_s,
                "speedup": reference_s / batch_s if batch_s > 0 else float("inf"),
            }
        )
    return records


# --------------------------------------------------------------- end to end


#: End-to-end suite points: (label, robot, obstacles, variant).  The first
#: entry is the paper-suite configuration the acceptance gate tracks
#: (6-DoF rozum arm, 32 obstacles, full MOPED).
E2E_SUITE = (
    ("rozum/32obs/v4", "rozum", 32, "v4"),
    ("rozum/32obs/v1", "rozum", 32, "v1"),
    ("xarm7/32obs/v4", "xarm7", 32, "v4"),
    ("mobile2d/16obs/v4", "mobile2d", 16, "v4"),
)


def bench_end_to_end(quick: bool = False, seed: int = 3) -> List[Dict]:
    """Time full planner runs under both kernel backends.

    Asserts the two backends produce bit-identical paths, costs, and
    operation-counter totals before reporting wall times — a perf number for
    a run that diverged would be meaningless.
    """
    suite = E2E_SUITE[:1] if quick else E2E_SUITE
    samples = 200 if quick else 600
    records: List[Dict] = []
    for label, robot_name, num_obstacles, variant in suite:
        task = random_task(robot_name, num_obstacles, seed=seed)
        robot = get_robot(robot_name)
        results, times = {}, {}
        for backend in ("batch", "reference"):
            config = moped_config(variant, kernels=backend, max_samples=samples, seed=5)
            t0 = time.perf_counter()
            results[backend] = plan(robot, task, config)
            times[backend] = time.perf_counter() - t0
        fast, gold = results["batch"], results["reference"]
        same_path = len(fast.path) == len(gold.path) and all(
            np.array_equal(a, b) for a, b in zip(fast.path, gold.path)
        )
        if not same_path or fast.path_cost != gold.path_cost:
            raise AssertionError(f"{label}: batch and reference plans diverged")
        if fast.counter.to_dict() != gold.counter.to_dict():
            raise AssertionError(f"{label}: operation counters diverged")
        records.append(
            {
                "case": label,
                "robot": robot_name,
                "obstacles": num_obstacles,
                "variant": variant,
                "max_samples": samples,
                "batch_s": times["batch"],
                "reference_s": times["reference"],
                "speedup": times["reference"] / times["batch"],
                "path_cost": fast.path_cost,
                "num_nodes": fast.num_nodes,
                "equivalent": True,
            }
        )
    return records


# ------------------------------------------------------------------- wave


#: Wavefront suite points: (label, robot, obstacles, variant, overrides).
#: The first entry is the showcase configuration of the wave acceptance
#: gate — a 2D mobile robot among 32 obstacles where per-motion kernel-call
#: overhead dominates, i.e. the case wavefront batching amortizes best.
WAVE_SUITE = (
    ("mobile2d/32obs/v1-norewire", "mobile2d", 32, "v1", {"rewire": False}),
    ("rozum/32obs/v1", "rozum", 32, "v1", {}),
)

#: Sampling budget of every wave-bench run.  Fixed (independent of --quick)
#: so quick CI runs and the committed full baseline share the same
#: (case, wave_width, max_samples) keys and the regression gate engages.
WAVE_SAMPLES = 600


def _plans_equal(a, b) -> Optional[str]:
    """Full bit-equality of two plan results; returns a reason on mismatch.

    Compares paths, costs, node counts, the operation-counter totals, and
    every per-round record including the per-unit (phase) MAC loads and
    event maps — the equality the speculate-and-repair theorems promise.
    """
    if len(a.path) != len(b.path) or not all(
        np.array_equal(p, q) for p, q in zip(a.path, b.path)
    ):
        return "paths differ"
    if a.path_cost != b.path_cost:
        return "path costs differ"
    if a.num_nodes != b.num_nodes:
        return "node counts differ"
    if a.counter.to_dict() != b.counter.to_dict():
        return "operation counters differ"
    if len(a.rounds) != len(b.rounds):
        return "round counts differ"
    for i, (r, s) in enumerate(zip(a.rounds, b.rounds)):
        if (
            (r.ns_macs, r.cc_macs, r.maint_macs, r.other_macs) !=
            (s.ns_macs, s.cc_macs, s.maint_macs, s.other_macs)
        ):
            return f"per-phase MAC loads differ at round {i}"
        if (r.accepted, r.missing_used, r.repaired, r.events) != (
            s.accepted, s.missing_used, s.repaired, s.events
        ):
            return f"round telemetry differs at round {i}"
    return None


def bench_wave(quick: bool = False, seed: int = 3, wave_width: int = 8) -> List[Dict]:
    """Time the wavefront planner against the scalar loop.

    For every suite case three configurations run: the plain scalar loop
    (``speculation_depth = 0``, the PR 3 batch-backend semantics), the
    scalar speculative loop at ``depth = wave_width``, and the wavefront
    planner at ``wave_width``.  The wave run is asserted bit-identical to
    the scalar speculative run — paths, costs, operation counters, and
    per-round phase loads — before any time is reported.  Timings
    interleave the three configurations across repetitions and report
    medians, which suppresses machine drift better than best-of-N here
    (whole planner runs are long enough to be preempted).
    """
    suite = WAVE_SUITE[:1] if quick else WAVE_SUITE
    reps = 3 if quick else 5
    records: List[Dict] = []
    for label, robot_name, num_obstacles, variant, overrides in suite:
        task = random_task(robot_name, num_obstacles, seed=seed)
        robot = get_robot(robot_name)

        def run(width: int, depth: int):
            config = moped_config(
                variant, max_samples=WAVE_SAMPLES, seed=5,
                wave_width=width, speculation_depth=depth, **overrides
            )
            planner = RRTStarPlanner(robot, task, config)
            t0 = time.perf_counter()
            result = planner.plan()
            return time.perf_counter() - t0, result, planner

        # Correctness gate first: a perf number for a diverged run is
        # meaningless.  This is also the bench's speculation_depth > 0
        # coverage — the scalar speculative planner runs here every time.
        _, spec_result, _ = run(1, wave_width)
        _, wave_result, wave_planner = run(wave_width, 0)
        reason = _plans_equal(wave_result, spec_result)
        if reason is not None:
            raise AssertionError(
                f"{label}: wave W={wave_width} diverged from scalar "
                f"speculation_depth={wave_width}: {reason}"
            )

        times: Dict[str, List[float]] = {"scalar": [], "spec": [], "wave": []}
        for _ in range(reps):
            dt, _, _ = run(1, 0)
            times["scalar"].append(dt)
            dt, _, _ = run(1, wave_width)
            times["spec"].append(dt)
            dt, wave_result, wave_planner = run(wave_width, 0)
            times["wave"].append(dt)
        scalar_s = statistics.median(times["scalar"])
        spec_s = statistics.median(times["spec"])
        wave_s = statistics.median(times["wave"])
        records.append(
            {
                "case": label,
                "robot": robot_name,
                "obstacles": num_obstacles,
                "variant": variant,
                "wave_width": wave_width,
                "max_samples": WAVE_SAMPLES,
                "scalar_s": scalar_s,
                "scalar_spec_s": spec_s,
                "wave_s": wave_s,
                "speedup_vs_scalar": scalar_s / wave_s,
                "speedup_vs_spec": spec_s / wave_s,
                "wave_occupancy": wave_occupancy(wave_result.rounds),
                "cache": wave_planner.cache_stats(),
                "path_cost": wave_result.path_cost,
                "num_nodes": wave_result.num_nodes,
                "equivalent": True,
            }
        )
    return records


# ------------------------------------------------------------------- edge


#: Whole-edge suite points: (label, robot, obstacles, checker).  Arm robots
#: only — the acceptance gate tracks the brute-OBB cases, where the stacked
#: edge kernels with the conservative AABB broadphase amortize best; the
#: two-stage case is reported for transparency (its per-configuration
#: baseline already funnels the exact SAT, so the margin is narrower).
EDGE_SUITE = (
    ("rozum/24obs/obb", "rozum", 24, "obb"),
    ("xarm7/24obs/obb", "xarm7", 24, "obb"),
    ("xarm7/24obs/two_stage", "xarm7", 24, "two_stage"),
)

#: Movements per measured pass and their wave grouping.  Fixed (independent
#: of ``--quick``) so quick CI runs and the committed full baseline share
#: the same (case, wave_width, edges) keys and the regression gate engages.
EDGE_COUNT = 192
EDGE_WAVE_WIDTH = 8


def _edge_batch(robot, rng: np.random.Generator, count: int):
    """Random short movements in the planner's steer/rewire edge regime.

    Uniform starts over the configuration bounds, random directions,
    lengths in [0.5, 2] steering steps, ends clipped back into bounds.
    """
    lo, hi = robot.config_lo, robot.config_hi
    starts = rng.uniform(lo, hi, size=(count, robot.dof))
    directions = rng.normal(size=(count, robot.dof))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    lengths = rng.uniform(0.5, 2.0, size=(count, 1)) * robot.step_size
    ends = np.clip(starts + directions * lengths, lo, hi)
    return starts, ends


def bench_edge(quick: bool = False, seed: int = 11) -> List[Dict]:
    """Time whole-edge validation against the per-configuration wave path.

    For every suite case three implementations process the same
    ``EDGE_COUNT`` random movements in waves of ``EDGE_WAVE_WIDTH``:

    * **pr4** — the previous wave backend: one interpolation ladder per
      edge, a single per-configuration ``config_results`` kernel pass over
      the wave's concatenated waypoints, then the scalar early-exit replay
      per edge;
    * **edge** — :meth:`~repro.core.collision.CollisionChecker.
      motion_results_batch`: the stacked whole-edge kernels behind one FK
      batch and the conservative AABB broadphase;
    * **scalar** — the reference backend's per-configuration walk, the
      golden semantics (correctness only, never timed).

    All three must agree on every verdict and every captured
    :class:`OpCounter` before any time is reported.  A fourth measurement
    replays the same waves through a warm whole-edge cache — the wavefront
    planner's steady state for repeated rewire candidates.
    """
    reps = 3 if quick else 7
    records: List[Dict] = []
    for label, robot_name, num_obstacles, checker_name in EDGE_SUITE:
        robot = get_robot(robot_name)
        env = random_task(robot_name, num_obstacles, seed=seed).environment
        resolution = robot.step_size / 4.0  # the planner's derivation rule
        rng = np.random.default_rng(seed)
        starts, ends = _edge_batch(robot, rng, EDGE_COUNT)
        waves = [
            (starts[i:i + EDGE_WAVE_WIDTH], ends[i:i + EDGE_WAVE_WIDTH])
            for i in range(0, EDGE_COUNT, EDGE_WAVE_WIDTH)
        ]
        checker = make_checker(checker_name, robot, env, resolution)
        golden = make_checker(
            checker_name, robot, env, resolution, kernels="reference"
        )

        def run_pr4(target=checker):
            out = []
            for wave_starts, wave_ends in waves:
                ladders = [
                    interpolate_configs(s, e, resolution)
                    for s, e in zip(wave_starts, wave_ends)
                ]
                verdicts, events = target.config_results(np.concatenate(ladders))
                pos = 0
                for ladder in ladders:
                    span = len(ladder)
                    captured = OpCounter()
                    verdict = target._replay_config_results(
                        verdicts[pos:pos + span], events[pos:pos + span], captured
                    )
                    out.append((verdict, captured))
                    pos += span
            return out

        def run_edge(target=checker):
            out = []
            for wave_starts, wave_ends in waves:
                out.extend(target.motion_results_batch(wave_starts, wave_ends))
            return out

        # Correctness gate first: a perf number for a diverged run is
        # meaningless.  Verdicts and captured counters of all three
        # implementations must match movement for movement.
        pr4_results = run_pr4()
        edge_results = run_edge()
        golden_results = run_edge(golden)
        for e, (a, b, c) in enumerate(
            zip(pr4_results, edge_results, golden_results)
        ):
            if not (a[0] == b[0] == c[0]):
                raise AssertionError(f"{label}: verdicts diverged at edge {e}")
            if not (a[1].to_dict() == b[1].to_dict() == c[1].to_dict()):
                raise AssertionError(f"{label}: counters diverged at edge {e}")

        pr4_s = _time(run_pr4, reps)
        edge_s = _time(run_edge, reps)
        cached = make_checker(
            checker_name, robot, env, resolution, edge_cache_size=4096
        )
        run_edge(cached)  # prime the whole-edge cache
        cached_s = _time(lambda: run_edge(cached), reps)

        records.append(
            {
                "case": label,
                "robot": robot_name,
                "obstacles": num_obstacles,
                "checker": checker_name,
                "wave_width": EDGE_WAVE_WIDTH,
                "edges": EDGE_COUNT,
                "pr4_s": pr4_s,
                "edge_s": edge_s,
                "cached_s": cached_s,
                "pr4_us_per_edge": pr4_s / EDGE_COUNT * 1e6,
                "edge_us_per_edge": edge_s / EDGE_COUNT * 1e6,
                "cached_us_per_edge": cached_s / EDGE_COUNT * 1e6,
                "speedup": pr4_s / edge_s if edge_s > 0 else float("inf"),
                "cached_speedup": (
                    pr4_s / cached_s if cached_s > 0 else float("inf")
                ),
                "equivalent": True,
            }
        )
    return records


# ---------------------------------------------------------------- connect


#: Connect suite points: (label, robot, obstacles).  Arm robots — the
#: regime where bidirectional greedy connect collapses the iteration count
#: hardest relative to wave RRT* (the PR 4/8 feasibility baseline).
CONNECT_SUITE = (
    ("rozum/24obs", "rozum", 24),
    ("xarm7/24obs", "xarm7", 24),
)

#: Sampling budget of every connect-bench run.  Fixed (independent of
#: ``--quick``) so quick CI runs and the committed full baseline share the
#: same (case, wave_width, max_samples) keys and the regression gate
#: engages.
CONNECT_SAMPLES = 600
CONNECT_WAVE_WIDTH = 8


def bench_connect(
    quick: bool = False, seed: int = 3, wave_width: int = CONNECT_WAVE_WIDTH
) -> List[Dict]:
    """Time bidirectional RRT-Connect against wave RRT* on feasibility.

    Both planners answer the same question — *find any collision-free
    path* — from identical tasks and seeds: the baseline is the wavefront
    RRT* loop at the same wave width with ``stop_on_goal`` (the PR 4/8
    first-feasible configuration), the candidate is the connect planner's
    batched alternating-trees loop.

    Correctness gates first: the connect run must be bit-identical across
    wave widths (W=1 vs W=``wave_width``: paths, costs, counters, rounds)
    and across repeats at the same width, and both planners must actually
    find a path.  Timings interleave the two planners across repetitions
    and report medians.
    """
    suite = CONNECT_SUITE[:1] if quick else CONNECT_SUITE
    reps = 3 if quick else 5
    records: List[Dict] = []
    for label, robot_name, num_obstacles in suite:
        task = random_task(robot_name, num_obstacles, seed=seed)
        robot = get_robot(robot_name)

        def run_connect(width: int):
            config = moped_config(
                "v4", max_samples=CONNECT_SAMPLES, seed=5,
                mode="connect", wave_width=width,
            )
            planner = RRTConnectPlanner(robot, task, config)
            t0 = time.perf_counter()
            result = planner.plan()
            return time.perf_counter() - t0, result, planner

        def run_rrtstar():
            config = moped_config(
                "v4", max_samples=CONNECT_SAMPLES, seed=5,
                wave_width=wave_width, stop_on_goal=True,
            )
            planner = RRTStarPlanner(robot, task, config)
            t0 = time.perf_counter()
            result = planner.plan()
            return time.perf_counter() - t0, result, planner

        # Correctness gates: wave-width invariance, repeat determinism,
        # and feasibility on both sides.  A perf number for a diverged or
        # failed run is meaningless.
        _, scalar_result, _ = run_connect(1)
        _, wave_result, _ = run_connect(wave_width)
        reason = _plans_equal(wave_result, scalar_result)
        if reason is not None:
            raise AssertionError(
                f"{label}: connect W={wave_width} diverged from W=1: {reason}"
            )
        _, repeat_result, _ = run_connect(wave_width)
        reason = _plans_equal(repeat_result, wave_result)
        if reason is not None:
            raise AssertionError(
                f"{label}: connect W={wave_width} is not reproducible "
                f"across repeats: {reason}"
            )
        if not wave_result.success:
            raise AssertionError(f"{label}: connect found no path")

        times: Dict[str, List[float]] = {"connect": [], "rrtstar": []}
        star_result = None
        connect_planner = None
        for _ in range(reps):
            dt, _, connect_planner = run_connect(wave_width)
            times["connect"].append(dt)
            dt, star_result, _ = run_rrtstar()
            times["rrtstar"].append(dt)
        if not star_result.success:
            raise AssertionError(f"{label}: wave RRT* baseline found no path")
        connect_s = statistics.median(times["connect"])
        rrtstar_s = statistics.median(times["rrtstar"])
        records.append(
            {
                "case": label,
                "robot": robot_name,
                "obstacles": num_obstacles,
                "wave_width": wave_width,
                "max_samples": CONNECT_SAMPLES,
                "connect_s": connect_s,
                "rrtstar_s": rrtstar_s,
                "speedup": rrtstar_s / connect_s if connect_s > 0 else float("inf"),
                "connect_path_cost": wave_result.path_cost,
                "rrtstar_path_cost": star_result.path_cost,
                "connect_iterations": wave_result.iterations,
                "rrtstar_iterations": star_result.iterations,
                "connect_nodes": wave_result.num_nodes,
                "cache": connect_planner.cache_stats(),
                "equivalent": True,
            }
        )
    return records


# --------------------------------------------------------------- portfolio


#: The two-planner race of the portfolio smoke: the feasibility specialist
#: against the optimizing wavefront loop.
PORTFOLIO_RACE = ("connect", "wave")


def bench_portfolio(quick: bool = False, seed: int = 3, workers: int = 2) -> Dict:
    """Portfolio racing smoke: race two planners, audit the accounting.

    Runs a small batch of portfolio requests through a real service (a
    worker pool when ``workers > 0``, the sequential inline race
    otherwise) and asserts the race invariants on every response: a winner
    exists and is feasible (``status="ok"``), every member ended in a
    terminal status, and the ``cancelled`` count in the race summary
    matches the per-member statuses.  Timing is reported for transparency
    only — the CI gate is the invariants, not the wall clock.
    """
    from repro.service.request import TERMINAL_STATUSES
    from repro.service.runner import PlanningService, build_requests

    jobs = 2 if quick else 4
    robot_name, obstacles = "rozum", 16
    with PlanningService(num_workers=workers) as service:
        requests = build_requests(
            robot=robot_name, obstacles=obstacles, jobs=jobs, seed=seed,
            samples=400, portfolio=PORTFOLIO_RACE,
        )
        t0 = time.perf_counter()
        responses = service.run_batch(requests)
        elapsed = time.perf_counter() - t0

    wins: Dict[str, int] = {}
    races: List[Dict] = []
    for response in responses:
        race = response.race
        if not race or race.get("winner") is None:
            raise AssertionError(
                f"portfolio race {response.request_id} produced no winner"
            )
        if response.status != "ok" or not response.success:
            raise AssertionError(
                f"portfolio race {response.request_id} winner is not a "
                f"feasible ok response (status={response.status!r})"
            )
        statuses = race["statuses"]
        for name, status in statuses.items():
            if status not in TERMINAL_STATUSES:
                raise AssertionError(
                    f"portfolio member {name} of {response.request_id} "
                    f"ended non-terminal: {status!r}"
                )
        counted = sum(1 for status in statuses.values() if status == "cancelled")
        if race["cancelled"] != counted:
            raise AssertionError(
                f"portfolio race {response.request_id}: summary counts "
                f"{race['cancelled']} cancelled members, statuses show {counted}"
            )
        wins[race["winner"]] = wins.get(race["winner"], 0) + 1
        races.append(
            {
                "request_id": response.request_id,
                "winner": race["winner"],
                "statuses": dict(statuses),
                "cancelled": race["cancelled"],
            }
        )
    return {
        "case": f"{robot_name}/{obstacles}obs",
        "planners": list(PORTFOLIO_RACE),
        "jobs": jobs,
        "workers": workers,
        "elapsed_s": elapsed,
        "wins": wins,
        "races": races,
        "equivalent": True,
    }


# ---------------------------------------------------------------- fault gate


#: Allowed fault-hook overhead: the inert-injector run may be at most 1%
#: slower than the no-injector run, plus an absolute cushion for timer
#: noise on short runs.
FAULTS_OVERHEAD_FACTOR = 1.01
FAULTS_OVERHEAD_SLACK_S = 0.01


def bench_faults_overhead(quick: bool = False, seed: int = 3) -> Dict:
    """Measure the cost of the fault-injection hooks when disabled.

    Runs the same planner configuration twice per repetition, interleaved:
    once with no injector installed (the production steady state — every
    hot site pays one ``is not None`` check) and once with an installed but
    *inert* plan (rules at the planner sites with ``p=0``, which skip the
    RNG draw).  Asserts both modes produce bit-identical plans, then
    reports interleaved medians and the overhead ratio.  ``--faults-gate``
    fails CI when the inert run exceeds the <1% budget the zero-overhead
    contract promises (:mod:`repro.faults`).
    """
    from repro.faults import FaultInjector, FaultPlan, FaultRule, set_injector

    samples = 200 if quick else 600
    reps = 5 if quick else 9
    task = random_task("mobile2d", 16, seed=seed)
    robot = get_robot("mobile2d")
    config = moped_config("v4", max_samples=samples, seed=5)
    inert_plan = FaultPlan(seed=1, rules=(
        FaultRule("planner.round", "slow", p=0.0),
        FaultRule("planner.collision", "slow", p=0.0),
    ))

    def run():
        t0 = time.perf_counter()
        result = plan(robot, task, config)
        return time.perf_counter() - t0, result

    times: Dict[str, List[float]] = {"disabled": [], "inert": []}
    results: Dict[str, object] = {}
    previous = set_injector(None)
    try:
        for _ in range(reps):
            set_injector(None)
            dt, results["disabled"] = run()
            times["disabled"].append(dt)
            set_injector(FaultInjector(inert_plan, scope="bench"))
            dt, results["inert"] = run()
            times["inert"].append(dt)
    finally:
        set_injector(previous)

    disabled, inert = results["disabled"], results["inert"]
    if (disabled.path_cost != inert.path_cost
            or disabled.counter.to_dict() != inert.counter.to_dict()):
        raise AssertionError(
            "inert fault injector changed the plan — the no-op contract is broken"
        )
    disabled_s = statistics.median(times["disabled"])
    inert_s = statistics.median(times["inert"])
    return {
        "case": "mobile2d/16obs/v4",
        "max_samples": samples,
        "reps": reps,
        "disabled_s": disabled_s,
        "inert_s": inert_s,
        "overhead_pct": 100.0 * (inert_s / disabled_s - 1.0) if disabled_s else 0.0,
        "equivalent": True,
    }


def check_faults_overhead(entry: Dict) -> List[str]:
    """Gate messages for a :func:`bench_faults_overhead` record (empty = pass)."""
    budget = entry["disabled_s"] * FAULTS_OVERHEAD_FACTOR + FAULTS_OVERHEAD_SLACK_S
    if entry["inert_s"] > budget:
        return [
            f"fault hooks overhead: inert {entry['inert_s']:.4f}s vs "
            f"disabled {entry['disabled_s']:.4f}s "
            f"({entry['overhead_pct']:+.2f}%, budget "
            f"{FAULTS_OVERHEAD_FACTOR:.2f}x + {FAULTS_OVERHEAD_SLACK_S}s)"
        ]
    return []


# ------------------------------------------------------------------- report


def run_benchmarks(
    quick: bool = False,
    skip_e2e: bool = False,
    seed: int = 0,
    wave: bool = False,
    wave_width: int = 8,
    faults: bool = False,
    edge: bool = False,
    connect: bool = False,
    portfolio: bool = False,
) -> Dict:
    """Full harness: kernel sweeps plus end-to-end planner runs."""
    report = {
        "schema": SCHEMA_VERSION,
        "emitter": "repro.bench",
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "kernels": bench_kernels(quick=quick, seed=seed),
        "end_to_end": [] if skip_e2e else bench_end_to_end(quick=quick),
        "wave": bench_wave(quick=quick, wave_width=wave_width) if wave else [],
        "edge": bench_edge(quick=quick) if edge else [],
        "connect": bench_connect(quick=quick) if connect else [],
        "portfolio": bench_portfolio(quick=quick) if portfolio else None,
        "faults": bench_faults_overhead(quick=quick) if faults else None,
    }
    return report


def save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    report: Dict,
    baseline: Dict,
    factor: float = REGRESSION_FACTOR,
) -> List[str]:
    """Regression check: returns one message per kernel slower than allowed.

    A kernel regresses when its batch time exceeds ``factor`` times the
    committed baseline's batch time for the same (kernel, dim, size) point;
    a wave case regresses when its wave time exceeds ``factor`` times the
    baseline's wave time for the same (case, wave_width, max_samples)
    point.  Points missing from either report are skipped — the gate only
    compares what both runs measured.
    """
    def key(entry: Dict):
        return (entry["kernel"], entry["dim"], entry["size"])

    base_index = {key(entry): entry for entry in baseline.get("kernels", [])}
    failures: List[str] = []
    for entry in report.get("kernels", []):
        base = base_index.get(key(entry))
        if base is None:
            continue
        if entry["batch_s"] > factor * base["batch_s"]:
            failures.append(
                f"{entry['kernel']} dim={entry['dim']} size={entry['size']}: "
                f"{entry['batch_s']:.6f}s vs baseline {base['batch_s']:.6f}s "
                f"(> {factor:.1f}x)"
            )

    def wave_key(entry: Dict):
        return (entry["case"], entry["wave_width"], entry["max_samples"])

    wave_index = {wave_key(entry): entry for entry in baseline.get("wave", [])}
    for entry in report.get("wave", []):
        base = wave_index.get(wave_key(entry))
        if base is None:
            continue
        if entry["wave_s"] > factor * base["wave_s"]:
            failures.append(
                f"wave {entry['case']} W={entry['wave_width']}: "
                f"{entry['wave_s']:.4f}s vs baseline {base['wave_s']:.4f}s "
                f"(> {factor:.1f}x)"
            )

    def edge_key(entry: Dict):
        return (entry["case"], entry["wave_width"], entry["edges"])

    edge_index = {edge_key(entry): entry for entry in baseline.get("edge", [])}
    for entry in report.get("edge", []):
        base = edge_index.get(edge_key(entry))
        if base is None:
            continue
        if entry["edge_s"] > factor * base["edge_s"]:
            failures.append(
                f"edge {entry['case']} W={entry['wave_width']}: "
                f"{entry['edge_s']:.4f}s vs baseline {base['edge_s']:.4f}s "
                f"(> {factor:.1f}x)"
            )

    def connect_key(entry: Dict):
        return (entry["case"], entry["wave_width"], entry["max_samples"])

    connect_index = {
        connect_key(entry): entry for entry in baseline.get("connect", [])
    }
    for entry in report.get("connect", []):
        base = connect_index.get(connect_key(entry))
        if base is None:
            continue
        if entry["connect_s"] > factor * base["connect_s"]:
            failures.append(
                f"connect {entry['case']} W={entry['wave_width']}: "
                f"{entry['connect_s']:.4f}s vs baseline "
                f"{base['connect_s']:.4f}s (> {factor:.1f}x)"
            )
    return failures
