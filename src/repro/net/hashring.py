"""Consistent-hash ring mapping cache keys to shard endpoints.

The sharded plan-cache tier (:mod:`repro.net.shard`) needs a stable
``key -> shard`` assignment that (a) spreads keys evenly across shards and
(b) moves as few keys as possible when a shard joins or leaves — a naive
``hash(key) % N`` remaps almost everything on reshard, which would turn
every topology change into a cluster-wide cold start.

Classic consistent hashing solves both: every node is hashed onto a ring
at ``virtual_nodes`` points (vnodes smooth out the variance a single point
per node would have), a key is owned by the first vnode clockwise from its
own hash, and adding or removing one node only reassigns the arcs adjacent
to that node's vnodes — in expectation a ``1/(N+1)`` fraction of the key
space.  Hashes come from SHA-256, so placement is identical across
processes, Python versions, and runs (``hash()`` is salted per process and
would silently split the tier).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

__all__ = ["HashRing"]

#: Default vnode count per node.  At 64 vnodes the max/mean key-load ratio
#: over a few shards stays within ~1.3x (test-enforced bounds are looser).
DEFAULT_VIRTUAL_NODES = 64


def _hash(data: str) -> int:
    """Stable 64-bit ring position for ``data``."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes (shard endpoint strings).

    Args:
        nodes: initial node names (e.g. ``"127.0.0.1:9001"``).
        virtual_nodes: ring points per node; more vnodes = smoother key
            distribution at the cost of a larger sorted ring.
    """

    def __init__(
        self,
        nodes: Sequence[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._nodes: List[str] = []
        #: Sorted vnode positions and the node owning each position, kept
        #: index-aligned for bisect lookup.
        self._ring: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------- topology

    @property
    def nodes(self) -> List[str]:
        """Current node names, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Insert ``node``'s vnodes into the ring (idempotent per name)."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for v in range(self.virtual_nodes):
            position = _hash(f"{node}#{v}")
            index = bisect.bisect(self._ring, position)
            self._ring.insert(index, position)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and all its vnodes from the ring."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._ring = [self._ring[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -------------------------------------------------------------- routing

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first vnode clockwise from its hash."""
        if not self._ring:
            raise ValueError("hash ring is empty")
        index = bisect.bisect(self._ring, _hash(key))
        if index == len(self._ring):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def nodes_for(self, key: str, count: int = 1) -> List[str]:
        """``key``'s owner plus its ``count - 1`` distinct ring successors.

        The replication set: walking clockwise from the key's hash and
        collecting distinct owners gives every key the same successor
        list on every process (same SHA-256 ring), so writers and
        readers agree on where the replicas live without coordination.
        ``count`` is clamped to the number of nodes on the ring.
        """
        if not self._ring:
            raise ValueError("hash ring is empty")
        if count < 1:
            raise ValueError("count must be >= 1")
        count = min(count, len(self._nodes))
        index = bisect.bisect(self._ring, _hash(key))
        owners: List[str] = []
        for step in range(len(self._ring)):
            owner = self._owners[(index + step) % len(self._ring)]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == count:
                    break
        return owners

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys-per-node histogram for ``keys`` (uniformity diagnostics)."""
        out: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out

    def remap_fraction(self, other: "HashRing", keys: Sequence[str]) -> float:
        """Fraction of ``keys`` that map differently on ``other``.

        The consistent-hashing contract under test: adding one node to an
        N-node ring should remap about ``1/(N+1)`` of the key space, not
        all of it.
        """
        if not keys:
            return 0.0
        moved = sum(1 for key in keys if self.node_for(key) != other.node_for(key))
        return moved / len(keys)


def spawn_ring(ring: HashRing, extra: Optional[Sequence[str]] = None) -> HashRing:
    """Copy ``ring`` (same vnode count), optionally with ``extra`` nodes."""
    fresh = HashRing(ring.nodes, virtual_nodes=ring.virtual_nodes)
    for node in extra or ():
        fresh.add_node(node)
    return fresh
