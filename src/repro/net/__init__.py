"""``repro.net``: the networked serving tier over the planning service.

PRs 1-5 built an in-process serving substrate — queue, pool, cache,
telemetry, fault injection.  This package is the *network entry point* on
top of it, the "millions of users" milestone of ROADMAP.md:

* :mod:`repro.net.wire` — the HTTP/JSON wire format: full-task and
  compact-spec request bodies, versioned response envelopes, and the
  terminal-status -> HTTP-code mapping.
* :mod:`repro.net.frontend` — an asyncio HTTP/1.1 front end (stdlib only)
  exposing ``POST /plan``, ``GET /result/<id>``, ``GET /healthz``, and
  ``GET /metrics``, with admission control and backpressure: queue-depth /
  inflight limits and the PR 5 circuit breaker all shed with ``429`` +
  ``Retry-After`` at the edge.
* :mod:`repro.net.hashring` + :mod:`repro.net.shard` — the consistent-hash
  sharded plan-cache tier: N shard processes share cached plans across M
  front-end processes, with minimal key remap on reshard and per-shard
  hit/miss/evict stats merged into the telemetry path.
* :mod:`repro.net.traffic` — open/closed-loop load generators with
  Poisson/uniform/burst arrival processes, scenario mixes from
  :mod:`repro.workloads`, and p50/p95/p99 goodput/shed-rate reports for
  CI gating.
* :mod:`repro.net.demo` — ``python -m repro.net demo``: the whole tier on
  localhost, driven at a target RPS, reported as JSON.

Quickstart::

    python -m repro.net demo --rps 200 --duration 10

Fault sites ``net.accept``, ``net.shard_rpc``, and ``net.respond`` hook
the new paths into :mod:`repro.faults`, so the chaos harness can exercise
connection drops and slow shards like any other layer.
"""

from repro.net.frontend import FrontEndConfig, PlanFrontEnd, run_server
from repro.net.hashring import HashRing
from repro.net.shard import (
    CacheShardServer,
    ShardClient,
    ShardedPlanCache,
    parse_endpoint,
    run_shard,
)
from repro.net.traffic import (
    TrafficConfig,
    TrafficResult,
    build_report,
    check_report,
    run_traffic,
)
from repro.net.wire import (
    HTTP_STATUS_FOR,
    WIRE_VERSION,
    http_status_for,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    spec_to_request,
)

__all__ = [
    "CacheShardServer",
    "FrontEndConfig",
    "HTTP_STATUS_FOR",
    "HashRing",
    "PlanFrontEnd",
    "ShardClient",
    "ShardedPlanCache",
    "TrafficConfig",
    "TrafficResult",
    "WIRE_VERSION",
    "build_report",
    "check_report",
    "http_status_for",
    "parse_endpoint",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "run_server",
    "run_shard",
    "run_traffic",
    "spec_to_request",
]
