"""Network-tier CLI: serve a front end, host a shard, or run the demo.

Usage::

    python -m repro.net serve --port 8421 --workers 4 \
        --shards 127.0.0.1:9001,127.0.0.1:9002
    python -m repro.net shard --port 9001 --capacity 2048
    python -m repro.net demo --rps 200 --duration 10
    python -m repro.net.traffic --url http://127.0.0.1:8421 ...  (harness)

``serve`` and ``shard`` print a parseable ``FRONTEND host:port`` /
``SHARD host:port`` line once bound (ephemeral ``--port 0`` supported),
which is what the demo orchestrator reads to discover the topology.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.net", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run one HTTP front-end process")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="planner worker processes (0 = inline)")
    serve.add_argument("--shards", default=None, metavar="EP[,EP...]",
                       help="cache-shard endpoints; selects the sharded "
                            "tier instead of the in-process cache")
    serve.add_argument("--cache-capacity", type=int, default=512)
    serve.add_argument("--max-queue-depth", type=int, default=64)
    serve.add_argument("--max-inflight", type=int, default=128)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-job wall budget handed to the pool")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After seconds for queue/inflight sheds")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures tripping the breaker "
                            "(0 disables edge shedding on breaker state)")
    serve.add_argument("--breaker-cooldown", type=float, default=2.0)
    serve.add_argument("--virtual-nodes", type=int, default=64)
    serve.add_argument("--replication", type=int, default=1,
                       help="copies of each entry on the shard tier "
                            "(>1 arms read failover + backfill)")
    serve.add_argument("--journal-dir", default=None, metavar="DIR",
                       help="write-ahead job journal directory; arms "
                            "crash recovery on restart")
    serve.add_argument("--drain-deadline", type=float, default=10.0,
                       help="seconds a SIGTERM drain waits for inflight "
                            "jobs before shutting down anyway")
    serve.add_argument("--metrics", action="store_true",
                       help="enable the obs metrics registry so GET "
                            "/metrics exports live counters")
    serve.add_argument("--fault-plan", default=None, metavar="SPEC",
                       help="repro.faults plan for the net.* sites, e.g. "
                            "'net.respond:drop@0.05'")
    serve.add_argument("--fault-seed", type=int, default=1)

    shard = sub.add_parser("shard", help="run one cache-shard process")
    shard.add_argument("--host", default="127.0.0.1")
    shard.add_argument("--port", type=int, default=9001,
                       help="bind port (0 = ephemeral)")
    shard.add_argument("--capacity", type=int, default=2048)

    demo = sub.add_parser(
        "demo", help="stand up shards + servers, drive traffic, report"
    )
    demo.add_argument("--rps", type=float, default=200.0)
    demo.add_argument("--duration", type=float, default=10.0)
    demo.add_argument("--servers", type=int, default=2)
    demo.add_argument("--shards", type=int, default=2)
    demo.add_argument("--workers", type=int, default=2,
                      help="planner workers per server process")
    demo.add_argument("--mix", default="smoke")
    demo.add_argument("--arrival", default="poisson",
                      choices=("poisson", "uniform", "burst"))
    demo.add_argument("--concurrency", type=int, default=16)
    demo.add_argument("--max-queue-depth", type=int, default=32)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--rolling", action="store_true",
                      help="restart every server one at a time under "
                           "live traffic (journals + replication on); "
                           "the gate still requires zero errors")
    demo.add_argument("--journal-dir", default=None, metavar="DIR",
                      help="journal root for --rolling (default: tempdir)")
    demo.add_argument("--out", default=None,
                      help="write the JSON report here too")
    demo.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        from repro import obs
        from repro.net.frontend import FrontEndConfig, run_server

        if args.metrics:
            obs.configure(metrics=True)
        shards = tuple(
            ep.strip() for ep in (args.shards or "").split(",") if ep.strip()
        )
        run_server(FrontEndConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_capacity=args.cache_capacity,
            shards=shards,
            max_queue_depth=args.max_queue_depth,
            max_inflight=args.max_inflight,
            max_batch=args.max_batch,
            retry_after_s=args.retry_after,
            timeout_s=args.timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            virtual_nodes=args.virtual_nodes,
            replication=args.replication,
            journal_dir=args.journal_dir,
            drain_deadline_s=args.drain_deadline,
            fault_spec=args.fault_plan,
            fault_seed=args.fault_seed,
        ))
        return 0

    if args.command == "shard":
        from repro.net.shard import run_shard

        run_shard(args.host, args.port, args.capacity)
        return 0

    if args.command == "demo":
        from repro.net.demo import run_demo

        return run_demo(
            rps=args.rps,
            duration_s=args.duration,
            servers=args.servers,
            shards=args.shards,
            workers=args.workers,
            mix=args.mix,
            arrival=args.arrival,
            concurrency=args.concurrency,
            max_queue_depth=args.max_queue_depth,
            seed=args.seed,
            out=args.out,
            quiet=args.quiet,
            rolling=args.rolling,
            journal_dir=args.journal_dir,
        )

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
