"""One-command demo: shards + multi-process servers + traffic + report.

``python -m repro.net demo`` stands up the whole serving tier on
localhost — N cache-shard processes, M front-end server processes sharing
them through the consistent-hash ring — waits for every ``/healthz`` to
answer, drives a rate-paced closed-loop load for the requested duration,
prints the percentile report as JSON, and tears everything down.  Exit
code 0 means the run was *green*: at least one request served, zero
non-429 errors (overload surfaces as shed 429s, never failures), and a
well-formed percentile report.

Child processes are plain ``sys.executable -m repro.net shard|serve``
subprocesses (they inherit ``PYTHONPATH``), each announcing its bound
port on stdout as ``SHARD host:port`` / ``FRONTEND host:port`` — the
orchestration-by-parseable-stdout pattern, so the demo works with
ephemeral ports and no config files.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

__all__ = ["run_demo"]

_START_TIMEOUT_S = 30.0


class _Child:
    """One managed subprocess that announces ``TAG host:port`` on stdout."""

    def __init__(self, tag: str, args: List[str]) -> None:
        self.tag = tag
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net"] + args,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        self.endpoint: Optional[str] = None

    def await_announce(self, timeout_s: float = _START_TIMEOUT_S) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"{self.tag} process exited before announcing "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith(self.tag + " "):
                self.endpoint = line.split()[1].strip()
                return self.endpoint
        raise RuntimeError(f"{self.tag} did not announce within {timeout_s}s")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


def _wait_healthy(url: str, timeout_s: float = _START_TIMEOUT_S) -> Dict:
    deadline = time.monotonic() + timeout_s
    last_error: Optional[str] = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2.0) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last_error = str(exc)
            time.sleep(0.1)
    raise RuntimeError(f"{url} never became healthy: {last_error}")


def run_demo(
    rps: float = 200.0,
    duration_s: float = 10.0,
    servers: int = 2,
    shards: int = 2,
    workers: int = 2,
    mix: str = "smoke",
    arrival: str = "poisson",
    concurrency: int = 16,
    max_queue_depth: int = 32,
    seed: int = 0,
    out: Optional[str] = None,
    quiet: bool = False,
) -> int:
    """Stand the tier up, drive it, report, and tear it down (exit code)."""
    from repro.net.traffic import (
        TrafficConfig,
        build_report,
        check_report,
        run_traffic,
    )

    if shards < 1 or servers < 1:
        raise ValueError("demo needs at least one shard and one server")
    children: List[_Child] = []
    say = (lambda *a: None) if quiet else (lambda *a: print(*a, flush=True))
    try:
        shard_endpoints: List[str] = []
        for _ in range(shards):
            child = _Child("SHARD", ["shard", "--port", "0"])
            children.append(child)
            shard_endpoints.append(child.await_announce())
        say(f"demo: {shards} cache shard(s) up: {', '.join(shard_endpoints)}")

        urls: List[str] = []
        for _ in range(servers):
            child = _Child("FRONTEND", [
                "serve", "--port", "0",
                "--workers", str(workers),
                "--max-queue-depth", str(max_queue_depth),
                "--shards", ",".join(shard_endpoints),
            ])
            children.append(child)
            urls.append("http://" + child.await_announce())
        for url in urls:
            _wait_healthy(url)
        say(f"demo: {servers} front end(s) healthy: {', '.join(urls)} "
            f"({workers} workers each)")

        say(f"demo: driving closed-loop {arrival} traffic at {rps:g} rps "
            f"for {duration_s:g}s (mix={mix}) ...")
        config = TrafficConfig(
            urls=tuple(urls),
            mode="closed",
            duration_s=duration_s,
            concurrency=concurrency,
            rps=rps,
            arrival=arrival,
            mix=mix,
            seed=seed,
        )
        result = run_traffic(config)
        report = build_report(result, config)

        # Fold the tier's server-side view into the report: per-server
        # health (cache stats include the shared shard tier) after load.
        report["servers"] = {url: _wait_healthy(url) for url in urls}
        report["shards"] = shard_endpoints

        print(json.dumps(report, indent=2))
        if out:
            import pathlib

            # File copy keeps the per-request rows so a gate failure can be
            # drilled into with ``python -m repro.obs rca``; stdout stays
            # record-free.
            full = build_report(result, config, include_records=True)
            full["servers"] = report["servers"]
            full["shards"] = shard_endpoints
            pathlib.Path(out).write_text(json.dumps(full, indent=2))
        violations = check_report(report)
        for violation in violations:
            print(f"DEMO GATE VIOLATION: {violation}", file=sys.stderr)
        if not violations:
            say(
                f"demo: green — served {report['served']}/{report['requests']} "
                f"(shed rate {report['shed_rate']:.1%}), p50/p95/p99 = "
                f"{report['latency_ms']['p50']}/{report['latency_ms']['p95']}/"
                f"{report['latency_ms']['p99']} ms"
            )
        return 1 if violations else 0
    finally:
        for child in reversed(children):
            child.stop()
