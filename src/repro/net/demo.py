"""One-command demo: shards + multi-process servers + traffic + report.

``python -m repro.net demo`` stands up the whole serving tier on
localhost — N cache-shard processes, M front-end server processes sharing
them through the consistent-hash ring — waits for every ``/healthz`` to
answer, drives a rate-paced closed-loop load for the requested duration,
prints the percentile report as JSON, and tears everything down.  Exit
code 0 means the run was *green*: at least one request served, zero
non-429 errors (overload surfaces as shed 429s, never failures), and a
well-formed percentile report.

Child processes are plain ``sys.executable -m repro.net shard|serve``
subprocesses (they inherit ``PYTHONPATH``), each announcing its bound
port on stdout as ``SHARD host:port`` / ``FRONTEND host:port`` — the
orchestration-by-parseable-stdout pattern, so the demo works with
ephemeral ports and no config files.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

__all__ = ["run_demo"]

_START_TIMEOUT_S = 30.0


class _Child:
    """One managed subprocess that announces ``TAG host:port`` on stdout."""

    def __init__(self, tag: str, args: List[str]) -> None:
        self.tag = tag
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net"] + args,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        self.endpoint: Optional[str] = None

    def await_announce(self, timeout_s: float = _START_TIMEOUT_S) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"{self.tag} process exited before announcing "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith(self.tag + " "):
                self.endpoint = line.split()[1].strip()
                return self.endpoint
        raise RuntimeError(f"{self.tag} did not announce within {timeout_s}s")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


def _wait_healthy(url: str, timeout_s: float = _START_TIMEOUT_S) -> Dict:
    deadline = time.monotonic() + timeout_s
    last_error: Optional[str] = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2.0) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last_error = str(exc)
            time.sleep(0.1)
    raise RuntimeError(f"{url} never became healthy: {last_error}")


def _wait_ready(url: str, timeout_s: float = _START_TIMEOUT_S) -> Dict:
    """Poll the *readiness* probe: 200 only after recovery has replayed.

    ``HTTPError`` (the 503 while starting/draining) is a ``URLError``
    subclass, so the retry loop covers both not-yet-listening and
    alive-but-not-ready.
    """
    deadline = time.monotonic() + timeout_s
    last_error: Optional[str] = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz?ready=1",
                                        timeout=2.0) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last_error = str(exc)
            time.sleep(0.1)
    raise RuntimeError(f"{url} never became ready: {last_error}")


def run_demo(
    rps: float = 200.0,
    duration_s: float = 10.0,
    servers: int = 2,
    shards: int = 2,
    workers: int = 2,
    mix: str = "smoke",
    arrival: str = "poisson",
    concurrency: int = 16,
    max_queue_depth: int = 32,
    seed: int = 0,
    out: Optional[str] = None,
    quiet: bool = False,
    rolling: bool = False,
    journal_dir: Optional[str] = None,
) -> int:
    """Stand the tier up, drive it, report, and tear it down (exit code).

    With ``rolling`` the demo additionally restarts each front end, one
    at a time, *while the load is running*: SIGTERM (graceful drain —
    admissions 503, inflight runs to terminal), wait for exit, respawn
    on the same port with the same journal directory, wait for the
    readiness probe, move to the next server.  Traffic runs with
    unavailable-retry on, so the gate stays "zero errors": every
    accepted request is served even though every server process was
    replaced mid-run.  Rolling mode arms journals (a temp directory per
    server unless ``journal_dir`` is given) and replication 2 on the
    shard tier, so the restart exercises the full durability stack.
    """
    from repro.net.traffic import (
        TrafficConfig,
        build_report,
        check_report,
        run_traffic,
    )

    if shards < 1 or servers < 1:
        raise ValueError("demo needs at least one shard and one server")
    if rolling and servers < 2:
        raise ValueError("rolling restart needs at least 2 servers "
                         "(someone must keep serving)")
    journal_root: Optional[str] = journal_dir
    if rolling and journal_root is None:
        journal_root = tempfile.mkdtemp(prefix="repro-demo-journal-")
    replication = min(2, shards) if rolling else 1
    children: List[_Child] = []
    say = (lambda *a: None) if quiet else (lambda *a: print(*a, flush=True))

    def serve_args(index: int, port: str) -> List[str]:
        args = [
            "serve", "--port", port,
            "--workers", str(workers),
            "--max-queue-depth", str(max_queue_depth),
            "--shards", ",".join(shard_endpoints),
        ]
        if journal_root:
            args += ["--journal-dir",
                     os.path.join(journal_root, f"server-{index}")]
        if replication > 1:
            args += ["--replication", str(replication)]
        return args

    try:
        shard_endpoints: List[str] = []
        for _ in range(shards):
            child = _Child("SHARD", ["shard", "--port", "0"])
            children.append(child)
            shard_endpoints.append(child.await_announce())
        say(f"demo: {shards} cache shard(s) up: {', '.join(shard_endpoints)}")

        urls: List[str] = []
        fronts: List[_Child] = []
        for index in range(servers):
            child = _Child("FRONTEND", serve_args(index, "0"))
            children.append(child)
            fronts.append(child)
            urls.append("http://" + child.await_announce())
        for url in urls:
            _wait_ready(url)
        say(f"demo: {servers} front end(s) ready: {', '.join(urls)} "
            f"({workers} workers each)")

        say(f"demo: driving closed-loop {arrival} traffic at {rps:g} rps "
            f"for {duration_s:g}s (mix={mix}"
            + (", rolling restarts" if rolling else "") + ") ...")
        config = TrafficConfig(
            urls=tuple(urls),
            mode="closed",
            duration_s=duration_s,
            concurrency=concurrency,
            rps=rps,
            arrival=arrival,
            mix=mix,
            seed=seed,
            retry_unavailable=rolling,
        )
        restarts: List[Dict] = []
        if rolling:
            holder: Dict[str, object] = {}

            def _drive() -> None:
                holder["result"] = run_traffic(config)

            driver = threading.Thread(target=_drive, daemon=True)
            driver.start()
            time.sleep(min(1.0, duration_s / 4))  # let load establish
            for index in range(servers):
                old = fronts[index]
                endpoint = old.endpoint
                port = endpoint.rpartition(":")[2]
                say(f"demo: rolling — draining {urls[index]} ...")
                t0 = time.monotonic()
                old.proc.terminate()  # SIGTERM: graceful drain
                old.proc.wait(timeout=_START_TIMEOUT_S)
                fresh = _Child("FRONTEND", serve_args(index, port))
                children.append(fresh)
                fronts[index] = fresh
                fresh.await_announce()
                ready = _wait_ready(urls[index])
                restarts.append({
                    "url": urls[index],
                    "downtime_s": round(time.monotonic() - t0, 3),
                    "recovery": ready.get("recovery"),
                })
                say(f"demo: rolling — {urls[index]} back "
                    f"({restarts[-1]['downtime_s']}s, recovery="
                    f"{json.dumps(ready.get('recovery'))})")
            driver.join()
            result = holder["result"]
        else:
            result = run_traffic(config)
        report = build_report(result, config)
        if rolling:
            report["rolling"] = {
                "restarts": restarts,
                "retried": result.retried,
                "journal_dir": journal_root,
            }

        # Fold the tier's server-side view into the report: per-server
        # health (cache stats include the shared shard tier) after load.
        report["servers"] = {url: _wait_healthy(url) for url in urls}
        report["shards"] = shard_endpoints

        print(json.dumps(report, indent=2))
        if out:
            import pathlib

            # File copy keeps the per-request rows so a gate failure can be
            # drilled into with ``python -m repro.obs rca``; stdout stays
            # record-free.
            full = build_report(result, config, include_records=True)
            full["servers"] = report["servers"]
            full["shards"] = shard_endpoints
            if rolling:
                full["rolling"] = report["rolling"]
            pathlib.Path(out).write_text(json.dumps(full, indent=2))
        violations = check_report(report)
        for violation in violations:
            print(f"DEMO GATE VIOLATION: {violation}", file=sys.stderr)
        if not violations:
            say(
                f"demo: green — served {report['served']}/{report['requests']} "
                f"(shed rate {report['shed_rate']:.1%}), p50/p95/p99 = "
                f"{report['latency_ms']['p50']}/{report['latency_ms']['p95']}/"
                f"{report['latency_ms']['p99']} ms"
            )
        return 1 if violations else 0
    finally:
        for child in reversed(children):
            child.stop()
