"""Sharded plan-cache tier: shard server, shard client, and the ring facade.

One :class:`CacheShardServer` process hosts a plain
:class:`~repro.service.cache.PlanCache` behind a newline-delimited JSON TCP
protocol (``{"op": "get"|"put"|"stats"|"ping", ...}`` -> one JSON reply per
line).  The protocol is deliberately dumb: every shard mutation happens on
the shard's single asyncio event loop, so the cache needs no locks and a
misbehaving client can only slow its own connection.

:class:`ShardedPlanCache` is the front-end-side facade: it duck-types the
in-process :class:`PlanCache` API (``get`` / ``put`` / ``stats`` /
``clear``), routes each cache key to a shard via the consistent-hash
:class:`~repro.net.hashring.HashRing`, and keeps one persistent
:class:`ShardClient` connection per shard.  A dead or slow shard degrades
to a cache *miss* (planning proceeds, the tier heals when the shard
returns) — the cache is an accelerator, never a dependency.

Failure accounting: client-side ``hits``/``misses``/``shard_errors``
counters live on the facade; authoritative ``size``/``evictions`` live on
the shards and are merged into :meth:`ShardedPlanCache.stats` per shard,
so the telemetry dump shows both the tier aggregate and the per-shard
split through the same path as the in-process cache.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Dict, List, Optional

from repro.faults import get_injector
from repro.net.hashring import HashRing
from repro.net.wire import response_from_wire, response_to_wire
from repro.obs import bump
from repro.service.cache import PlanCache
from repro.service.request import PlanResponse

__all__ = [
    "CacheShardServer",
    "ShardClient",
    "ShardedPlanCache",
    "parse_endpoint",
    "run_shard",
]


def parse_endpoint(endpoint: str) -> "tuple[str, int]":
    """``"host:port"`` -> ``(host, port)``."""
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad shard endpoint {endpoint!r} (want host:port)")
    return host, int(port)


# ------------------------------------------------------------------- server


class CacheShardServer:
    """One cache shard: a :class:`PlanCache` behind an asyncio TCP server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 capacity: int = 1024) -> None:
        self.host = host
        self.port = port
        self.cache = PlanCache(capacity)
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # The op handlers are synchronous on purpose: the event loop serialises
    # them, which is the shard's whole concurrency story.

    def handle(self, message: Dict) -> Dict:
        """Execute one decoded op against the cache; returns the reply."""
        op = message.get("op")
        self.requests += 1
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "get":
            entry = self.cache.get(str(message["key"]),
                                   str(message.get("request_id", "")))
            if entry is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, "response": response_to_wire(entry)}
        if op == "put":
            self.cache.put(str(message["key"]),
                           response_from_wire(message["response"]))
            return {"ok": True}
        if op == "keys":
            # Anti-entropy enumeration: no hit/miss accounting.
            return {"ok": True, "keys": self.cache.keys()}
        if op == "peek":
            # Raw read for backfill: no relabel, no LRU reorder.
            entry = self.cache.peek(str(message["key"]))
            if entry is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, "response": response_to_wire(entry)}
        if op == "stats":
            stats = self.cache.stats()
            stats["requests"] = self.requests
            return {"ok": True, "stats": stats}
        if op == "clear":
            self.cache.clear()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    reply = self.handle(message)
                except Exception as exc:  # bad frame: answer, keep serving
                    reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def start(self) -> None:
        """Bind and start serving; ``port=0`` resolves to the bound port."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def run_shard(host: str = "127.0.0.1", port: int = 0,
              capacity: int = 1024, announce: bool = True) -> None:
    """Blocking entry point: serve one shard until interrupted."""
    shard = CacheShardServer(host, port, capacity)

    async def _main() -> None:
        await shard.start()
        if announce:  # parseable line so orchestrators can learn the port
            print(f"SHARD {shard.host}:{shard.port}", flush=True)
        await shard.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


# ------------------------------------------------------------------- client


class ShardClient:
    """Blocking line-protocol client for one shard endpoint.

    Holds one persistent connection, reconnecting lazily after an error.
    All methods raise :class:`ConnectionError`/``OSError`` on transport
    trouble; the :class:`ShardedPlanCache` facade is the layer that turns
    that into a graceful miss.
    """

    def __init__(self, endpoint: str, timeout_s: float = 2.0) -> None:
        self.endpoint = endpoint
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._file = None

    def _connect(self) -> None:
        host, port = parse_endpoint(self.endpoint)
        sock = socket.create_connection((host, port), timeout=self.timeout_s)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def call(self, message: Dict) -> Dict:
        """One request/reply round trip (reconnects once if needed)."""
        injector = get_injector()
        if injector is not None:
            # ``net.shard_rpc``: chaos hook for slow/erroring/dropped shard
            # round trips.  A returned transport kind simulates a broken
            # connection (the facade then treats the lookup as a miss).
            if injector.fire("net.shard_rpc", detail=self.endpoint) is not None:
                self.close()
                raise ConnectionError(
                    f"injected shard_rpc fault for {self.endpoint}"
                )
        if self._sock is None:
            self._connect()
        payload = json.dumps(message).encode("utf-8") + b"\n"
        try:
            self._sock.sendall(payload)
            line = self._file.readline()
        except (OSError, ValueError):
            # Stale connection (shard restarted): reconnect and retry once.
            self.close()
            self._connect()
            self._sock.sendall(payload)
            line = self._file.readline()
        if not line:
            self.close()
            raise ConnectionError(f"shard {self.endpoint} closed the connection")
        reply = json.loads(line)
        if not reply.get("ok", False):
            raise ConnectionError(
                f"shard {self.endpoint} refused op: {reply.get('error')}"
            )
        return reply

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("ok"))


class ShardedPlanCache:
    """Consistent-hash sharded cache tier with the :class:`PlanCache` API.

    With ``replication > 1`` every entry is written to the key's owner
    *and* its ring successors, and reads fail over down the same replica
    chain — a dead primary degrades to a replica-served hit instead of a
    miss, and the response is tagged ``via_replica`` so telemetry can
    split the two.  Endpoints that error are down-marked and skipped for
    ``retry_down_s`` (one failed connect per probe window instead of one
    per lookup); when a probe finds a down shard alive again, the tier
    backfills it from its replica peers (anti-entropy) before trusting it
    with reads.

    Args:
        endpoints: shard endpoints (``"host:port"`` strings).
        virtual_nodes: hash-ring vnodes per shard.
        timeout_s: per-RPC socket timeout.
        replication: copies of each entry (clamped to the shard count).
        retry_down_s: seconds before a down-marked shard is re-probed.
            The default 0 probes on every access (a failed shard still
            heals on the very next lookup); raise it when connect
            *timeouts* — rather than fast refusals — are the failure
            mode and per-lookup probing would stall the caller.
    """

    def __init__(self, endpoints: List[str], virtual_nodes: int = 64,
                 timeout_s: float = 2.0, replication: int = 1,
                 retry_down_s: float = 0.0) -> None:
        if not endpoints:
            raise ValueError("sharded cache needs at least one endpoint")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.ring = HashRing(endpoints, virtual_nodes=virtual_nodes)
        self.replication = replication
        self.retry_down_s = retry_down_s
        self._timeout_s = timeout_s
        self._clients: Dict[str, ShardClient] = {
            endpoint: ShardClient(endpoint, timeout_s) for endpoint in endpoints
        }
        #: endpoint -> monotonic time it was marked down.  Down shards are
        #: skipped until ``retry_down_s`` elapses, then probed once.
        self._down: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.shard_errors = 0
        self.failovers = 0
        self.replica_hits = 0
        self.backfilled = 0

    # ------------------------------------------------------------- topology

    @property
    def endpoints(self) -> List[str]:
        return self.ring.nodes

    def add_shard(self, endpoint: str, timeout_s: float = 2.0) -> None:
        """Join a shard; only the ring arcs next to its vnodes remap."""
        self.ring.add_node(endpoint)
        self._clients[endpoint] = ShardClient(endpoint, timeout_s)

    def remove_shard(self, endpoint: str) -> None:
        """Leave a shard (its keys fall to ring neighbours as misses)."""
        self.ring.remove_node(endpoint)
        self._clients.pop(endpoint).close()
        self._down.pop(endpoint, None)

    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    # -------------------------------------------------------- replica health

    def replicas_for(self, key: str) -> List[str]:
        """The key's replica chain: primary first, then ring successors."""
        return self.ring.nodes_for(key, self.replication)

    def _skip_down(self, endpoint: str) -> bool:
        """True when ``endpoint`` is down-marked and not yet due a probe."""
        marked = self._down.get(endpoint)
        if marked is None:
            return False
        return (time.monotonic() - marked) < self.retry_down_s

    def _mark_down(self, endpoint: str, op: str) -> None:
        self.shard_errors += 1
        self._down[endpoint] = time.monotonic()
        bump("repro_net_shard_errors_total",
             help="Shard RPCs that failed (timeouts, resets, faults)",
             endpoint=endpoint, op=op)

    def _mark_up(self, endpoint: str) -> None:
        """A previously-down shard answered: clear the mark, backfill it.

        The backfill runs *before* the shard serves its next read — a
        rejoining shard has an empty (or stale) cache and would otherwise
        turn every key it owns into a miss until organic traffic refills
        it.
        """
        if self._down.pop(endpoint, None) is not None and self.replication > 1:
            self.backfill(endpoint)

    # ---------------------------------------------------------- cache facade

    def _client_for(self, key: str) -> ShardClient:
        return self._clients[self.ring.node_for(key)]

    def get(self, key: str, request_id: str = "") -> Optional[PlanResponse]:
        """Tier lookup with read failover down the replica chain.

        Tries the primary first, then each ring successor holding a
        replica; shard trouble down-marks the endpoint and moves on.  A
        replica-served hit is tagged ``via_replica`` and read-repaired
        back to the primary (best-effort).  Only when every replica is
        unreachable or empty does the lookup degrade to a miss — the tier
        stays an accelerator, never a dependency.
        """
        replicas = self.replicas_for(key)
        for rank, endpoint in enumerate(replicas):
            if self._skip_down(endpoint):
                # Down-marking skips the connect attempt, not the
                # accounting: this lookup still failed to reach a shard.
                self.shard_errors += 1
                bump("repro_net_shard_errors_total",
                     help="Shard RPCs that failed (timeouts, resets, faults)",
                     endpoint=endpoint, op="get")
                continue
            probing = endpoint in self._down
            try:
                reply = self._clients[endpoint].call(
                    {"op": "get", "key": key, "request_id": request_id}
                )
            except (OSError, ValueError):
                self._mark_down(endpoint, op="get")
                continue
            # First successful reply decides the lookup: an alive shard
            # answering "no hit" is a genuine miss, not a reason to scan
            # the rest of the chain.
            if probing:
                self._mark_up(endpoint)
            if rank > 0:
                # Primary was down or erroring: this read failed over.
                self.failovers += 1
                bump("repro_shard_failovers_total",
                     help="Reads served by a replica after primary failure")
            if not reply.get("hit"):
                break
            self.hits += 1
            bump("repro_cache_events_total", cache="plan_shard", event="hit")
            # The shard already relabelled the entry for ``request_id`` and
            # marked it as a hit (PlanCache.get does), so decode verbatim.
            response = response_from_wire(reply["response"])
            if rank > 0:
                self.replica_hits += 1
                response.via_replica = True
                # Read repair: push the entry back to the primary so the
                # next lookup is served first-hop again.
                self._put_one(replicas[0], key, reply["response"],
                              op="read_repair")
            return response
        self.misses += 1
        bump("repro_cache_events_total", cache="plan_shard", event="miss")
        return None

    def _put_one(self, endpoint: str, key: str, wire: Dict, op: str) -> bool:
        """Best-effort put of an already-encoded entry to one shard."""
        if self._skip_down(endpoint):
            self.shard_errors += 1
            bump("repro_net_shard_errors_total",
                 help="Shard RPCs that failed (timeouts, resets, faults)",
                 endpoint=endpoint, op=op)
            return False
        probing = endpoint in self._down
        try:
            self._clients[endpoint].call(
                {"op": "put", "key": key, "response": wire}
            )
        except (OSError, ValueError):
            self._mark_down(endpoint, op=op)
            return False
        if probing:
            self._mark_up(endpoint)
        return True

    def put(self, key: str, response: PlanResponse) -> None:
        """Insert into the owning shard and its replicas (best-effort)."""
        wire = response_to_wire(response)
        injector = get_injector()
        for rank, endpoint in enumerate(self.replicas_for(key)):
            if rank > 0 and injector is not None:
                # ``shard.replicate``: chaos hook for lost replica writes —
                # the replication analogue of a dropped WAL record.  Any
                # returned kind loses this replica copy (the primary write
                # already happened, so the entry survives degraded).
                if injector.fire("shard.replicate", detail=endpoint) is not None:
                    self.shard_errors += 1
                    bump("repro_net_shard_errors_total",
                         help="Shard RPCs that failed (timeouts, resets, faults)",
                         endpoint=endpoint, op="replicate")
                    continue
            self._put_one(endpoint, key, wire,
                          op="put" if rank == 0 else "replicate")

    def backfill(self, endpoint: str) -> int:
        """Anti-entropy: refill ``endpoint`` from its replica peers.

        Walks every *other* live shard's key list, and for each key whose
        replica chain includes ``endpoint`` but which ``endpoint`` does
        not hold, peeks the entry from the peer and puts it to the
        rejoining shard.  Peek (not get) so the repair traffic does not
        skew hit-rate counters or LRU order on the donor.  Returns the
        number of entries copied.
        """
        if endpoint not in self._clients:
            raise ValueError(f"unknown shard {endpoint!r}")
        copied = 0
        target = self._clients[endpoint]
        try:
            have = set(target.call({"op": "keys"}).get("keys", []))
        except (OSError, ValueError):
            self._mark_down(endpoint, op="backfill")
            return 0
        for peer in self.ring.nodes:
            if peer == endpoint or self._skip_down(peer):
                continue
            client = self._clients[peer]
            try:
                peer_keys = client.call({"op": "keys"}).get("keys", [])
            except (OSError, ValueError):
                self._mark_down(peer, op="backfill")
                continue
            for key in peer_keys:
                if key in have or endpoint not in self.replicas_for(key):
                    continue
                try:
                    reply = client.call({"op": "peek", "key": key})
                except (OSError, ValueError):
                    self._mark_down(peer, op="backfill")
                    break
                if not reply.get("hit"):
                    continue
                if self._put_one(endpoint, key, reply["response"],
                                 op="backfill"):
                    have.add(key)
                    copied += 1
                else:
                    return copied  # target died mid-backfill
        self.backfilled += copied
        return copied

    def clear(self) -> None:
        for client in self._clients.values():
            try:
                client.call({"op": "clear"})
            except (OSError, ValueError):
                self.shard_errors += 1

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, object]:
        """Tier aggregate + per-shard split, PlanCache-stats compatible."""
        shards: Dict[str, object] = {}
        size = 0
        evictions = 0
        capacity = 0
        for endpoint in self.ring.nodes:
            try:
                shard_stats = self._clients[endpoint].call({"op": "stats"})["stats"]
            except (OSError, ValueError):
                self.shard_errors += 1
                shards[endpoint] = {"unreachable": True}
                continue
            shards[endpoint] = shard_stats
            size += int(shard_stats.get("size", 0))
            evictions += int(shard_stats.get("evictions", 0))
            capacity += int(shard_stats.get("capacity", 0))
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "size": size,
            "capacity": capacity,
            "evictions": evictions,
            "sharded": True,
            "shard_errors": self.shard_errors,
            "replication": self.replication,
            "failovers": self.failovers,
            "replica_hits": self.replica_hits,
            "backfilled": self.backfilled,
            "down": sorted(self._down),
            "shards": shards,
        }
