"""HTTP/JSON wire format for planning requests and responses.

The network layer speaks plain JSON built from the same primitives the
persistence layer already pins down: tasks serialise through
:func:`repro.io.task_to_dict`, planner configs through ``dataclasses.
asdict`` (every field is a JSON scalar), and responses through
:meth:`~repro.service.request.PlanResponse.to_dict`.  Anything that
round-trips here hashes to the same :meth:`PlanRequest.cache_key` on both
sides of the wire, which is what lets N front-end processes share one
cache tier.

Two request body shapes are accepted by ``POST /plan``:

* **full** — ``{"task": {...}, "config": {...}, "lanes": 1, ...}``: the
  caller ships a complete task and planner configuration.
* **spec** — ``{"spec": {"robot": "mobile2d", "obstacles": 8, "seed": 3,
  ...}}``: a compact generator spec the server expands deterministically
  via :func:`repro.workloads.random_task` + :func:`repro.core.moped.
  config_for_variant`.  Identical specs expand to identical requests (and
  therefore identical cache keys), so load generators can drive realistic
  hit rates with tiny payloads.

``HTTP_STATUS_FOR`` maps the service's terminal statuses onto HTTP codes;
429 (admission shed) is deliberately *not* in the map — shedding happens
before a request becomes a job, so it never produces a ``PlanResponse``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Optional

from repro.core.config import PlannerConfig
from repro.errors import InvalidRequest
from repro.service.request import STATUSES, PlanRequest, PlanResponse

__all__ = [
    "HTTP_STATUS_FOR",
    "WIRE_VERSION",
    "http_status_for",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "spec_to_request",
]

#: Wire schema version, echoed in every response envelope so a newer
#: server and an older harness can detect a mismatch instead of
#: mis-parsing each other.
WIRE_VERSION = 1

#: Terminal service status -> HTTP response code.  ``ok``/``degraded``
#: are successes (degraded is a *served* best-so-far result, not an
#: error); ``invalid`` is the caller's fault; ``timeout`` maps to the
#: gateway-timeout family; the crash/poison/error family is a 500.
#: ``cancelled`` (a portfolio race member stopped because another planner
#: already won) is 503: the service declined to finish this job, the
#: caller holds the winner's answer under the parent request id.
HTTP_STATUS_FOR: Dict[str, int] = {
    "ok": 200,
    "degraded": 200,
    "invalid": 400,
    "timeout": 504,
    "cancelled": 503,
    "crash": 500,
    "error": 500,
    "poison": 500,
}


def http_status_for(status: str) -> int:
    """HTTP code for a terminal service status (unknown statuses -> 500)."""
    return HTTP_STATUS_FOR.get(status, 500)


# ------------------------------------------------------------------ request


def request_to_wire(request: PlanRequest) -> Dict:
    """``PlanRequest`` -> JSON-safe dict (full form)."""
    from repro.io import task_to_dict

    out: Dict[str, object] = {
        "task": task_to_dict(request.task),
        "config": asdict(request.config),
        "lanes": request.lanes,
        "smooth": request.smooth,
        "request_id": request.request_id,
    }
    if request.timeout_s is not None:
        out["timeout_s"] = request.timeout_s
    if request.portfolio is not None:
        out["portfolio"] = list(request.portfolio)
    return out


def spec_to_request(spec: Dict, request_id: str = "") -> PlanRequest:
    """Expand a compact generator spec into a full :class:`PlanRequest`.

    Recognised keys (all optional except ``seed`` defaults to 0):
    ``robot``, ``obstacles``, ``seed``, ``variant``, ``samples``,
    ``goal_bias``, ``lanes``, ``smooth``, ``timeout_s``, ``deadline_s``,
    ``mode`` (``"rrtstar"``/``"connect"``) and ``portfolio`` (a list of
    planner names, or ``["auto"]``, racing the request).  Unknown keys are
    rejected so a typo degrades to a 400, not to a silently-different
    workload.
    """
    from repro.core.moped import config_for_variant
    from repro.workloads import random_task

    known = {
        "robot", "obstacles", "seed", "variant", "samples", "goal_bias",
        "lanes", "smooth", "timeout_s", "deadline_s", "mode", "portfolio",
    }
    unknown = set(spec) - known
    if unknown:
        raise InvalidRequest(f"unknown spec keys: {sorted(unknown)}")
    seed = int(spec.get("seed", 0))
    task = random_task(
        str(spec.get("robot", "mobile2d")),
        int(spec.get("obstacles", 8)),
        seed=seed,
        task_id=seed,
    )
    config = config_for_variant(
        str(spec.get("variant", "full")),
        max_samples=int(spec.get("samples", 400)),
        seed=seed,
        goal_bias=float(spec.get("goal_bias", 0.1)),
        deadline_s=spec.get("deadline_s"),
        mode=str(spec.get("mode", "rrtstar")),
    )
    timeout_s = spec.get("timeout_s")
    portfolio = spec.get("portfolio")
    if portfolio is not None and not isinstance(portfolio, (list, tuple)):
        raise InvalidRequest("'portfolio' must be a list of planner names")
    return PlanRequest(
        task=task,
        config=config,
        lanes=int(spec.get("lanes", 1)),
        smooth=bool(spec.get("smooth", False)),
        timeout_s=float(timeout_s) if timeout_s is not None else None,
        request_id=request_id,
        portfolio=tuple(str(name) for name in portfolio) if portfolio else None,
    )


def request_from_wire(data: Dict, request_id: str = "") -> PlanRequest:
    """JSON body -> :class:`PlanRequest` (full or spec form).

    Raises :class:`~repro.errors.InvalidRequest` for anything malformed —
    the front end maps that to a 400 with the error message in the body.
    """
    from repro.io import task_from_dict

    if not isinstance(data, dict):
        raise InvalidRequest("request body must be a JSON object")
    request_id = str(data.get("request_id", request_id) or request_id)
    if "spec" in data:
        spec = data["spec"]
        if not isinstance(spec, dict):
            raise InvalidRequest("'spec' must be a JSON object")
        try:
            return spec_to_request(spec, request_id=request_id)
        except InvalidRequest:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequest(f"bad request spec: {exc}")
    if "task" not in data:
        raise InvalidRequest("request body needs 'task' (full) or 'spec'")
    try:
        task = task_from_dict(data["task"])
        config = PlannerConfig(**data.get("config", {}))
        timeout_s = data.get("timeout_s")
        portfolio = data.get("portfolio")
        if portfolio is not None and not isinstance(portfolio, (list, tuple)):
            raise InvalidRequest("'portfolio' must be a list of planner names")
        return PlanRequest(
            task=task,
            config=config,
            lanes=int(data.get("lanes", 1)),
            smooth=bool(data.get("smooth", False)),
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            request_id=request_id,
            portfolio=tuple(str(name) for name in portfolio) if portfolio else None,
        )
    except InvalidRequest:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequest(f"bad request body: {exc}")


# ----------------------------------------------------------------- response


def response_to_wire(response: PlanResponse, include_path: bool = True) -> Dict:
    """``PlanResponse`` -> JSON envelope with the wire version stamped."""
    out = response.to_dict(include_path=include_path)
    out["wire_version"] = WIRE_VERSION
    return out


def response_from_wire(data: Dict) -> PlanResponse:
    """Inverse of :func:`response_to_wire`.

    Tolerates a missing ``wire_version`` (version-0 peers) but rejects a
    *newer* one and unknown statuses — both mean the peer speaks a schema
    this process does not.
    """
    if not isinstance(data, dict):
        raise ValueError("response body must be a JSON object")
    version = int(data.get("wire_version", WIRE_VERSION))
    if version > WIRE_VERSION:
        raise ValueError(
            f"wire version {version} is newer than supported ({WIRE_VERSION})"
        )
    status = data.get("status")
    if status not in STATUSES:
        raise ValueError(f"unknown response status {status!r}")
    payload = dict(data)
    payload.pop("wire_version", None)
    return PlanResponse.from_dict(payload)


def error_body(status: str, message: str, request_id: str = "") -> Dict:
    """Envelope for edge-synthesised failures (parse errors, shed, ...)."""
    response = PlanResponse(request_id=request_id, status=status, error=message)
    return response_to_wire(response, include_path=False)
