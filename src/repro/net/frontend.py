"""Asyncio HTTP/JSON front end over the planning service.

Architecture: one process, two lanes.  The asyncio event loop owns the
sockets — accepting connections, parsing HTTP/1.1, and writing responses —
while a single *engine thread* owns the :class:`~repro.service.runner.
PlanningService` (and through it the cache tier and the multiprocessing
worker pool).  Handlers hand admitted requests to the engine as
``(PlanRequest, Future)`` pairs; the engine drains the intake queue into
micro-batches of :meth:`PlanningService.run_batch` and resolves the
futures, which the handlers ``await`` without blocking the loop.  The
service object is therefore touched by exactly one thread — the same
single-owner discipline the worker pool applies to its pipes.

Endpoints:

* ``POST /plan`` — plan a request (full or spec wire form).  Default is
  synchronous (the response body is the terminal ``PlanResponse``);
  ``?wait=0`` returns ``202 {"id": ...}`` immediately.
* ``GET /result/<id>`` — fetch an async result: 200 terminal, 202 still
  planning, 404 unknown/expired.
* ``GET /healthz`` — liveness + admission state (queue depth, inflight,
  breaker snapshot).
* ``GET /metrics`` — Prometheus text exposition from :mod:`repro.obs`.

Admission control and backpressure: a request is *shed* with ``429 Too
Many Requests`` plus a ``Retry-After`` header when (a) the engine's queue
depth is at ``max_queue_depth``, (b) more than ``max_inflight`` HTTP
requests are already being served, or (c) the worker pool's circuit
breaker (PR 5) is open — an unhealthy pool sheds at the edge for the
remaining cooldown instead of queueing more doomed work.  Shedding happens
*before* a request becomes a job, so the planning layers never see the
overload.

Fault sites (chaos harness): ``net.accept`` fires per accepted connection
(error/slow kinds, or ``drop`` to close unserved) and ``net.respond``
before each response write (``drop`` closes the socket mid-exchange);
``net.shard_rpc`` lives in :mod:`repro.net.shard`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import FaultInjected, InvalidRequest
from repro.faults import get_injector
from repro.obs import bump, get_registry
from repro.service.breaker import OPEN
from repro.service.pool import PoolConfig
from repro.service.runner import PlanningService
from repro.service.request import PlanRequest, PlanResponse
from repro.net.wire import (
    error_body,
    http_status_for,
    request_from_wire,
    response_to_wire,
)

__all__ = ["FrontEndConfig", "PlanFrontEnd", "run_server"]

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Refuse request bodies above this size (a planning task is small; a
#: multi-megabyte body is a client bug or abuse).
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass
class FrontEndConfig:
    """Knobs of one front-end process.

    Attributes:
        host / port: bind address (``port=0`` = ephemeral, resolved after
            start).
        workers: planner worker processes (0 = inline, for tests).
        cache_capacity: in-process cache size when no shard tier is given.
        shards: shard endpoints; non-empty selects the sharded tier.
        max_queue_depth: engine backlog above which POSTs are shed.
        max_inflight: concurrent HTTP requests above which POSTs are shed.
        max_batch: engine micro-batch size cap (bounds batch latency).
        retry_after_s: baseline ``Retry-After`` for queue/inflight sheds.
        timeout_s: per-job wall budget handed to the pool.
        breaker_threshold / breaker_cooldown_s: circuit-breaker wiring
            (non-zero threshold arms edge shedding on an open breaker).
        virtual_nodes: hash-ring vnodes per shard.
        replication: copies of each entry on the shard tier (>1 arms
            read failover + anti-entropy backfill).
        journal_dir: directory for the write-ahead job journal; ``None``
            disables durability (no WAL, no crash recovery).
        drain_deadline_s: seconds a SIGTERM drain waits for inflight
            jobs to reach terminal status before shutting down anyway.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    cache_capacity: int = 512
    shards: Tuple[str, ...] = ()
    max_queue_depth: int = 64
    max_inflight: int = 128
    max_batch: int = 16
    retry_after_s: float = 1.0
    timeout_s: float = 30.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    virtual_nodes: int = 64
    replication: int = 1
    journal_dir: Optional[str] = None
    drain_deadline_s: float = 10.0
    fault_spec: Optional[str] = None
    fault_seed: int = 1

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")


class _Engine(threading.Thread):
    """The single thread that owns the PlanningService.

    Drains the intake queue into ``run_batch`` micro-batches; each intake
    item is ``(PlanRequest, concurrent Future)`` and the future resolves
    to the terminal :class:`PlanResponse`.
    """

    def __init__(self, service: PlanningService, max_batch: int,
                 prepare=None) -> None:
        super().__init__(name="repro-net-engine", daemon=True)
        self.service = service
        self.max_batch = max_batch
        #: Optional callable run on the engine thread before the first
        #: batch — crash recovery replays here, so recovered jobs execute
        #: under the same single-owner discipline as live traffic.
        self.prepare = prepare
        self.intake: "queue.Queue[Optional[tuple]]" = queue.Queue()
        #: Jobs inside the currently-running batch (engine-thread writes,
        #: handler-thread reads; int writes are atomic under the GIL).
        self.inflight_batch = 0
        self.batches = 0

    def depth(self) -> int:
        """Engine backlog: queued intake plus the batch being planned."""
        return self.intake.qsize() + self.inflight_batch

    def submit(self, request: PlanRequest):
        import concurrent.futures

        future: "concurrent.futures.Future[PlanResponse]" = (
            concurrent.futures.Future()
        )
        self.intake.put((request, future))
        return future

    def stop(self) -> None:
        self.intake.put(None)

    def run(self) -> None:
        if self.prepare is not None:
            self.prepare()
        while True:
            try:
                item = self.intake.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            batch: List[tuple] = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self.intake.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self.intake.put(None)  # re-arm shutdown after the batch
                    break
                batch.append(extra)
            self.inflight_batch = len(batch)
            self.batches += 1
            try:
                responses = self.service.run_batch([req for req, _ in batch])
            except Exception as exc:
                for req, future in batch:
                    if not future.done():
                        future.set_exception(exc)
            else:
                for (_, future), response in zip(batch, responses):
                    if not future.done():
                        future.set_result(response)
            finally:
                self.inflight_batch = 0
        self.service.close()


class PlanFrontEnd:
    """The HTTP server: admission control at the edge, engine behind it."""

    def __init__(self, config: Optional[FrontEndConfig] = None) -> None:
        self.config = config if config is not None else FrontEndConfig()
        cfg = self.config
        cache = None
        if cfg.shards:
            from repro.net.shard import ShardedPlanCache

            cache = ShardedPlanCache(list(cfg.shards),
                                     virtual_nodes=cfg.virtual_nodes,
                                     replication=cfg.replication)
        pool_config = None
        if cfg.workers > 0:
            pool_config = PoolConfig(
                num_workers=cfg.workers,
                default_timeout_s=cfg.timeout_s,
                breaker_threshold=cfg.breaker_threshold,
                breaker_cooldown_s=cfg.breaker_cooldown_s,
            )
        journal = None
        if cfg.journal_dir:
            from repro.service.journal import JobJournal

            journal = JobJournal(cfg.journal_dir)
        self.service = PlanningService(
            num_workers=cfg.workers,
            cache_capacity=cfg.cache_capacity,
            pool_config=pool_config,
            cache=cache,
            journal=journal,
        )
        self.engine = _Engine(self.service, cfg.max_batch,
                              prepare=self._recover)
        self._ids = itertools.count(1)
        #: Async-mode results: id -> Future, bounded FIFO eviction.
        self._results: "OrderedDict[str, object]" = OrderedDict()
        self._results_cap = 4096
        self.inflight = 0
        self.shed = {"queue": 0, "inflight": 0, "breaker": 0, "draining": 0}
        self.started_at = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        #: Readiness gate: set once journal recovery has replayed (or there
        #: is no journal).  ``/healthz?ready=1`` answers 503 until then.
        self.ready = threading.Event()
        if journal is None:
            # Nothing to recover: ready immediately, even in unit tests
            # that never start the engine thread.
            self.ready.set()
        #: SIGTERM drain state: True stops admissions (503 + Retry-After)
        #: while inflight work runs to terminal status.
        self.draining = False
        #: Recovery summary from the engine's prepare step (None before).
        self.recovery: Optional[Dict] = None

    def _recover(self) -> None:
        """Engine prepare step: replay the journal, then open readiness."""
        try:
            result = self.service.recover()
            # Responses are live objects, not JSON — /healthz reports the
            # counts, telemetry already observed the responses themselves.
            result.pop("responses", None)
            self.recovery = result
        except Exception as exc:  # recovery must never wedge the engine
            self.recovery = {
                "enabled": True,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self.ready.set()

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        return self.config.port

    async def start(self) -> None:
        self.engine.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.config.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.stop()
        self.engine.join(timeout=5.0)

    async def drain_and_stop(self) -> bool:
        """Graceful shutdown: stop admissions, drain, mark clean.

        The SIGTERM path.  New ``POST /plan`` requests answer 503 with a
        ``Retry-After`` the moment ``draining`` flips; inflight jobs get
        up to ``drain_deadline_s`` to reach terminal status.  Only a
        fully-drained shutdown writes the journal's clean-shutdown marker
        — an expired deadline leaves the journal "dirty" so the next
        start replays whatever was cut off.  Returns True when the drain
        completed in time.
        """
        self.draining = True
        deadline = time.monotonic() + self.config.drain_deadline_s
        while time.monotonic() < deadline:
            if self.engine.depth() == 0 and self.inflight == 0:
                break
            await asyncio.sleep(0.05)
        drained = self.engine.depth() == 0 and self.inflight == 0
        await self.stop()
        journal = getattr(self.service, "journal", None)
        if journal is not None:
            if drained:
                journal.mark_clean_shutdown()
            journal.close()
        return drained

    # ------------------------------------------------------------ admission

    def _shed_reason(self) -> Optional[Tuple[str, float]]:
        """Why a POST must be shed right now (reason, retry-after s)."""
        cfg = self.config
        breaker = self.service.breaker
        if breaker is not None and breaker.enabled and breaker.state == OPEN:
            remaining = breaker.cooldown_s - (time.monotonic() - breaker.opened_at)
            if remaining > 0:
                return "breaker", remaining
        if self.engine.depth() >= cfg.max_queue_depth:
            return "queue", cfg.retry_after_s
        if self.inflight > cfg.max_inflight:
            return "inflight", cfg.retry_after_s
        return None

    # ----------------------------------------------------------------- http

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        injector = get_injector()
        if injector is not None:
            try:
                if injector.fire("net.accept") is not None:
                    writer.close()  # transport kind: drop the connection
                    return
            except FaultInjected:
                writer.close()
                return
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, target, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self.inflight += 1
                try:
                    code, payload, extra = await self._route(
                        method, target, headers, body
                    )
                finally:
                    self.inflight -= 1
                if not await self._write_response(
                    writer, code, payload, extra, keep_alive
                ):
                    break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return method, target, headers, b"__too_large__"
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(self, writer, code: int, payload: Dict,
                              extra_headers: Dict[str, str],
                              keep_alive: bool) -> bool:
        injector = get_injector()
        if injector is not None:
            try:
                if injector.fire("net.respond") is not None:
                    writer.close()  # dropped response: client sees a reset
                    return False
            except FaultInjected:
                writer.close()
                return False
        # /metrics hands over pre-encoded text; everything else is JSON.
        body = payload if isinstance(payload, bytes) \
            else json.dumps(payload).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        headers.update(extra_headers)
        head = f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        ) + "\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return True

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, target: str, headers: Dict[str, str],
                     body: bytes):
        parts = urlsplit(target)
        path = parts.path
        t0 = time.perf_counter()
        try:
            if path == "/plan" and method == "POST":
                result = await self._handle_plan(parts.query, body)
            elif path.startswith("/result/") and method == "GET":
                result = self._handle_result(path[len("/result/"):])
            elif path == "/healthz" and method == "GET":
                result = self._handle_health(parts.query)
            elif path == "/metrics" and method == "GET":
                return await self._handle_metrics()
            elif path in ("/plan", "/healthz", "/metrics") \
                    or path.startswith("/result/"):
                result = 405, {"error": f"method {method} not allowed"}, {}
            else:
                result = 404, {"error": f"no route for {path}"}, {}
        except Exception as exc:  # route bug: answer 500, keep serving
            result = (500, error_body("error",
                                      f"{type(exc).__name__}: {exc}"), {})
        code = result[0]
        bump("repro_net_requests_total", help="Front-end HTTP requests",
             route=path if not path.startswith("/result/") else "/result",
             code=code)
        registry = get_registry()
        if registry.enabled and path == "/plan":
            registry.histogram(
                "repro_net_request_seconds",
                "Front-end request latency (admission to response build)",
            ).observe(time.perf_counter() - t0, route="/plan", code=str(code))
        return result

    async def _handle_plan(self, query: str, body: bytes):
        if body == b"__too_large__":
            return 413, error_body("invalid", "request body too large"), {}
        if self.draining:
            # Graceful drain: refuse new work outright (503, not 429 —
            # this server is going away, not merely busy) but keep
            # serving what was already admitted.
            self.shed["draining"] += 1
            bump("repro_net_shed_total",
                 help="Requests shed by admission control", reason="draining")
            retry_s = max(1, math.ceil(self.config.retry_after_s))
            return (
                503,
                {"error": "draining", "shed": True, "reason": "draining",
                 "retry_after_s": retry_s},
                {"Retry-After": str(retry_s)},
            )
        shed = self._shed_reason()
        if shed is not None:
            reason, retry_after = shed
            self.shed[reason] += 1
            bump("repro_net_shed_total",
                 help="Requests shed by admission control", reason=reason)
            retry_s = max(1, math.ceil(retry_after))
            return (
                429,
                {"error": "overloaded", "shed": True, "reason": reason,
                 "retry_after_s": retry_s},
                {"Retry-After": str(retry_s)},
            )
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return 400, error_body("invalid", f"bad JSON: {exc}"), {}
        request_id = f"net-{next(self._ids):06d}"
        try:
            request = request_from_wire(data, request_id=request_id)
        except InvalidRequest as exc:
            return 400, error_body("invalid", str(exc), request_id), {}
        future = self.engine.submit(request)
        wait = parse_qs(query).get("wait", ["1"])[0] not in ("0", "false", "no")
        if not wait:
            self._results[request_id] = future
            while len(self._results) > self._results_cap:
                self._results.popitem(last=False)
            return 202, {"id": request_id, "status": "accepted"}, {}
        try:
            response = await asyncio.wrap_future(future)
        except Exception as exc:
            return 500, error_body("error", f"engine failure: {exc}",
                                   request_id), {}
        return http_status_for(response.status), response_to_wire(response), {}

    def _handle_result(self, result_id: str):
        future = self._results.get(result_id)
        if future is None:
            return 404, {"error": f"unknown result id {result_id!r}"}, {}
        if not future.done():
            return 202, {"id": result_id, "status": "pending"}, {}
        try:
            response = future.result()
        except Exception as exc:
            return 500, error_body("error", f"engine failure: {exc}",
                                   result_id), {}
        return http_status_for(response.status), response_to_wire(response), {}

    def _handle_health(self, query: str):
        """Liveness always answers 200; ``?ready=1`` is the gate probe.

        Readiness is 503 while journal recovery has not finished *or*
        the server is draining — in both states the process is alive but
        must not receive new traffic (rolling-restart orchestrators and
        load balancers key off exactly this split).
        """
        probe = parse_qs(query).get("ready", ["0"])[0] \
            not in ("0", "", "false", "no")
        # Gate first, body second: the ready flag is set *after* the
        # recovery summary is published, so a body built after a passing
        # gate check is guaranteed to carry it (building the body first
        # can snapshot a pre-recovery state and then pass the gate).
        if probe and (self.draining or not self.ready.is_set()):
            body = self._health()
            body["status"] = "draining" if self.draining else "starting"
            return 503, body, {"Retry-After": "1"}
        return 200, self._health(), {}

    def _health(self) -> Dict:
        breaker = self.service.breaker
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "ready": self.ready.is_set() and not self.draining,
            "draining": self.draining,
            "recovery": self.recovery,
            "queue_depth": self.engine.depth(),
            "max_queue_depth": self.config.max_queue_depth,
            "inflight": self.inflight,
            "batches": self.engine.batches,
            "workers": 0 if self.service.inline else self.config.workers,
            "shed": dict(self.shed),
            "breaker": breaker.snapshot() if breaker is not None else None,
            "cache": self.service.cache.stats(),
        }

    async def _handle_metrics(self):
        registry = get_registry()
        text = registry.to_prometheus() if registry.enabled else ""
        body = text.encode("utf-8")
        # /metrics is the one non-JSON route; returned pre-encoded.
        return 200, body, {"Content-Type": "text/plain; version=0.0.4"}

    # _write_response JSON-encodes dict payloads; bytes pass through.


def run_server(config: FrontEndConfig, announce: bool = True) -> None:
    """Blocking entry point: serve one front end until interrupted.

    SIGTERM triggers the graceful drain (:meth:`PlanFrontEnd.
    drain_and_stop`): admissions stop with 503 + Retry-After, inflight
    work runs to terminal status within the drain deadline, and a clean
    drain stamps the journal's clean-shutdown marker.  SIGINT/KILL skip
    all of that — which is exactly what the recovery path is for.
    """
    if config.fault_spec:
        from repro.faults import FaultPlan, install_plan

        install_plan(FaultPlan.from_spec(config.fault_spec,
                                         seed=config.fault_seed),
                     scope="frontend")
    front = PlanFrontEnd(config)

    async def _main() -> None:
        import signal

        await front.start()
        term = asyncio.Event()
        try:
            asyncio.get_running_loop().add_signal_handler(
                signal.SIGTERM, term.set
            )
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
        if announce:  # parseable line so orchestrators can learn the port
            print(f"FRONTEND {front.config.host}:{front.config.port}",
                  flush=True)
        serve = asyncio.ensure_future(front.serve_forever())
        waiter = asyncio.ensure_future(term.wait())
        await asyncio.wait({serve, waiter},
                           return_when=asyncio.FIRST_COMPLETED)
        if term.is_set():
            # Drain fully *inside* the running loop — asyncio.run would
            # cancel a half-finished drain task on teardown otherwise.
            drained = await front.drain_and_stop()
            if announce:
                print(f"DRAINED {'clean' if drained else 'deadline'}",
                      flush=True)
        waiter.cancel()
        serve.cancel()
        try:
            await serve
        except (asyncio.CancelledError, Exception):
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
