"""Load generators and latency-percentile reporting for the front end.

Two generator disciplines, the standard pair from serving-systems
evaluation:

* **closed-loop** — ``concurrency`` workers each cycle request ->
  response -> next request.  Offered load self-limits to the server's
  capacity (a slow server slows the workers), so closed loop measures
  *latency at sustainable throughput*.  An optional ``rps`` target paces
  the workers through a shared arrival schedule, turning it into the
  rate-limited closed loop the demo uses.
* **open-loop** — requests fire at the arrival process's schedule whether
  or not earlier ones finished (up to ``max_outstanding``, a harness
  safety valve).  Open loop is the honest overload probe: the server
  cannot slow the clients down, so admission control either sheds (429)
  or drowns.

Arrival processes: ``uniform`` (constant gaps), ``poisson`` (exponential
gaps — independent users), ``burst`` (``burst_size`` back-to-back arrivals
then a long gap, same mean rate — tests queue absorption).

Scenario bodies come from :mod:`repro.workloads.mixes` — weighted mixes
with per-entry seed pools, so the same harness measures cold-start
capacity (huge pool) or cache-tier behaviour (small pool) by name.

Every request becomes one record; :func:`build_report` reduces them to
the JSON the CI gate consumes: p50/p95/p99 latency, goodput, shed rate,
and per-code/per-status splits.  :func:`check_report` returns the list of
gate violations (empty = green).

CLI::

    python -m repro.net.traffic --url http://127.0.0.1:8421 \
        --mode closed --concurrency 8 --rps 50 --duration 5 \
        --mix smoke --arrival poisson --out report.json --gate
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.obs.stats import percentile
from repro.workloads.mixes import draw_spec, mix_names

__all__ = [
    "ARRIVALS",
    "TRAFFIC_EMITTER",
    "TRAFFIC_SCHEMA",
    "TrafficConfig",
    "TrafficResult",
    "build_report",
    "check_report",
    "make_arrivals",
    "run_traffic",
]

#: Version stamp on every written report so downstream consumers
#: (``repro.obs.rca``) can reject or upgrade mismatched dumps.
TRAFFIC_SCHEMA = 1
TRAFFIC_EMITTER = "repro.net.traffic"


# ------------------------------------------------------------------ arrivals


def _uniform(rate: float, rng: random.Random) -> Callable[[], float]:
    gap = 1.0 / rate
    return lambda: gap


def _poisson(rate: float, rng: random.Random) -> Callable[[], float]:
    return lambda: rng.expovariate(rate)


def _burst(rate: float, rng: random.Random,
           burst_size: int = 8) -> Callable[[], float]:
    # ``burst_size`` arrivals back to back, then one long gap that
    # restores the mean rate: gap = burst_size / rate.
    state = {"i": 0}

    def gap() -> float:
        state["i"] += 1
        if state["i"] % burst_size:
            return 0.0
        return burst_size / rate

    return gap


ARRIVALS: Dict[str, Callable] = {
    "uniform": _uniform,
    "poisson": _poisson,
    "burst": _burst,
}


def make_arrivals(name: str, rate: float, rng: random.Random) -> Callable[[], float]:
    """Inter-arrival-gap sampler for ``name`` at mean ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    factory = ARRIVALS.get(name)
    if factory is None:
        raise ValueError(f"unknown arrival process {name!r}; "
                         f"known: {sorted(ARRIVALS)}")
    return factory(rate, rng)


class _Pacer:
    """Shared arrival schedule: workers claim strictly increasing slots."""

    def __init__(self, gap_fn: Callable[[], float], start: float) -> None:
        self._gap = gap_fn
        self._next = start
        self._lock = threading.Lock()

    def claim(self) -> float:
        """Absolute monotonic time of the next arrival (claimed once)."""
        with self._lock:
            slot = self._next
            self._next += self._gap()
            return slot


# -------------------------------------------------------------------- client


class _HttpClient:
    """Minimal keep-alive JSON client over stdlib ``http.client``."""

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"need an http://host:port URL, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> "tuple[int, Dict]":
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        for attempt in (1, 2):  # retry once on a stale keep-alive socket
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                raw = conn.getresponse()
                data = raw.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            decoded = {"raw": data.decode("utf-8", "replace")}
        return raw.status, decoded


# ------------------------------------------------------------------- harness


@dataclass
class TrafficConfig:
    """One load-generation run.

    ``urls`` may name several front-end processes; workers round-robin
    across them, which is how the demo drives a multi-process tier.
    """

    urls: Sequence[str] = ("http://127.0.0.1:8421",)
    mode: str = "closed"           # "closed" | "open"
    duration_s: float = 5.0
    concurrency: int = 8           # closed-loop worker count
    rps: Optional[float] = None    # target rate (required for open loop)
    arrival: str = "poisson"
    mix: str = "smoke"
    seed: int = 0
    timeout_s: float = 30.0
    max_outstanding: int = 256     # open-loop safety valve
    seed_base: int = 0             # offset into every entry's seed pool
    #: Retry 503 (draining) and transport-dead responses on the next URL
    #: in the rotation.  This is the rolling-restart client contract: a
    #: server that is going away tells you so, and the tier has siblings
    #: — so follow the redirect instead of recording an error.
    retry_unavailable: bool = False
    retry_attempts: int = 4        # total tries per request when retrying
    retry_backoff_s: float = 0.1   # sleep between tries

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.mode == "open" and not self.rps:
            raise ValueError("open-loop traffic needs a target --rps")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not self.urls:
            raise ValueError("need at least one front-end URL")


@dataclass
class TrafficResult:
    """Raw per-request records plus the run's wall-clock envelope."""

    records: List[Dict] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    transport_errors: int = 0
    #: Requests that needed at least one unavailable-retry (503/dead
    #: server) before settling — the rolling-restart disruption measure.
    retried: int = 0

    @property
    def duration_s(self) -> float:
        return max(1e-9, self.finished_at - self.started_at)


def _spec_attributes(spec: Dict) -> Dict:
    """Workload attributes copied onto the per-request record so traffic
    dumps are drill-down-able (which robot / sample count / deadline arm
    regressed, not just that p95 moved)."""
    attrs: Dict = {}
    for name in ("robot", "obstacles", "samples"):
        if spec.get(name) is not None:
            attrs[name] = spec[name]
    attrs["deadline"] = "armed" if spec.get("deadline_s") else "none"
    return attrs


def _one_request(clients: "List[_HttpClient]", spec: Dict,
                 result: TrafficResult, lock: threading.Lock,
                 config: Optional[TrafficConfig] = None) -> None:
    """Issue one request, optionally retrying unavailable servers.

    ``clients`` is the worker's URL rotation; without retry only the
    first client is used.  With ``config.retry_unavailable`` a 503
    (draining server) or a dead connection moves to the next client in
    the rotation, so a rolling restart shows up as latency, not errors.
    One record is appended either way — the request's final outcome.
    """
    retry = config is not None and config.retry_unavailable
    max_attempts = config.retry_attempts if retry else 1
    t0 = time.perf_counter()
    attempt = 0
    while True:
        client = clients[attempt % len(clients)]
        attempt += 1
        try:
            code, body = client.request("POST", "/plan", {"spec": spec})
            record = {
                "latency_s": time.perf_counter() - t0,
                "code": code,
                "status": body.get("status"),
                "cache_hit": bool(body.get("cache_hit", False)),
            }
        except (OSError, http.client.HTTPException) as exc:
            record = {
                "latency_s": time.perf_counter() - t0,
                "code": 0,
                "status": "transport_error",
                "error": f"{type(exc).__name__}: {exc}",
            }
        if retry and record["code"] in (0, 503) and attempt < max_attempts:
            time.sleep(config.retry_backoff_s)
            continue
        break
    record["attempt"] = attempt
    record.update(_spec_attributes(spec))
    with lock:
        result.records.append(record)
        if record["code"] == 0:
            result.transport_errors += 1
        if attempt > 1:
            result.retried += 1


def run_traffic(config: TrafficConfig) -> TrafficResult:
    """Drive the configured load and collect per-request records."""
    result = TrafficResult()
    lock = threading.Lock()
    deadline_holder = {}

    def _spec_stream(worker_seed: int) -> Callable[[], Dict]:
        rng = random.Random(config.seed * 1_000_003 + worker_seed)
        return lambda: draw_spec(config.mix, rng, seed_base=config.seed_base)

    start = time.monotonic()
    deadline_holder["t"] = start + config.duration_s
    result.started_at = time.perf_counter()

    if config.mode == "closed":
        pacer = None
        if config.rps:
            gap_fn = make_arrivals(config.arrival, config.rps,
                                   random.Random(config.seed))
            pacer = _Pacer(gap_fn, start)

        def worker(index: int) -> None:
            # The worker's URL rotation starts at its own offset so load
            # spreads evenly; the tail of the rotation is only touched by
            # unavailable-retries.
            n = len(config.urls)
            clients = [_HttpClient(config.urls[(index + k) % n],
                                   config.timeout_s) for k in range(n)]
            draw = _spec_stream(index)
            try:
                while True:
                    now = time.monotonic()
                    if now >= deadline_holder["t"]:
                        break
                    if pacer is not None:
                        slot = pacer.claim()
                        if slot >= deadline_holder["t"]:
                            break
                        delay = slot - time.monotonic()
                        if delay > 0:
                            time.sleep(delay)
                    _one_request(clients, draw(), result, lock, config)
            finally:
                for client in clients:
                    client.close()

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(config.concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        # Open loop: one scheduler thread claims arrival slots and hands
        # each request to a short-lived worker; ``max_outstanding`` bounds
        # the thread population when the server falls behind.
        gap_fn = make_arrivals(config.arrival, config.rps,
                               random.Random(config.seed))
        pacer = _Pacer(gap_fn, start)
        outstanding = threading.Semaphore(config.max_outstanding)
        draw = _spec_stream(0)
        fired: List[threading.Thread] = []

        def shoot(spec: Dict, start_index: int) -> None:
            n = len(config.urls)
            clients = [_HttpClient(config.urls[(start_index + k) % n],
                                   config.timeout_s) for k in range(n)]
            try:
                _one_request(clients, spec, result, lock, config)
            finally:
                for client in clients:
                    client.close()
                outstanding.release()

        i = 0
        while True:
            slot = pacer.claim()
            if slot >= deadline_holder["t"]:
                break
            delay = slot - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if not outstanding.acquire(timeout=max(
                    0.0, deadline_holder["t"] - time.monotonic())):
                break  # saturated past the deadline
            t = threading.Thread(
                target=shoot,
                args=(draw(), i),
                daemon=True,
            )
            t.start()
            fired.append(t)
            i += 1
        for t in fired:
            t.join(timeout=config.timeout_s)

    result.finished_at = time.perf_counter()
    return result


# -------------------------------------------------------------------- report


def build_report(result: TrafficResult, config: TrafficConfig,
                 include_records: bool = False) -> Dict:
    """Reduce raw records to the percentile report the CI gate consumes.

    With ``include_records`` the per-request rows (latency, code, status,
    plus the workload attributes from :func:`_spec_attributes`) ride along
    so the written report can feed ``repro.obs.rca`` drill-downs.
    """
    records = result.records
    served = [r for r in records if r["code"] in (200, 202)]
    shed = [r for r in records if r["code"] == 429]
    errors = [r for r in records if r["code"] not in (200, 202, 429)]
    latencies = [r["latency_s"] for r in served]
    by_code: Dict[str, int] = {}
    by_status: Dict[str, int] = {}
    for r in records:
        by_code[str(r["code"])] = by_code.get(str(r["code"]), 0) + 1
        status = str(r.get("status"))
        by_status[status] = by_status.get(status, 0) + 1

    def _pct(q: float) -> Optional[float]:
        if not latencies:
            return None
        return round(percentile(latencies, q) * 1e3, 3)

    duration = result.duration_s
    report = {
        "schema": TRAFFIC_SCHEMA,
        "emitter": TRAFFIC_EMITTER,
        "mode": config.mode,
        "mix": config.mix,
        "arrival": config.arrival,
        "target_rps": config.rps,
        "concurrency": config.concurrency,
        "duration_s": round(duration, 3),
        "requests": len(records),
        "offered_rps": round(len(records) / duration, 2),
        "goodput_rps": round(len(served) / duration, 2),
        "served": len(served),
        "shed": len(shed),
        "errors": len(errors),
        "transport_errors": result.transport_errors,
        "retried": result.retried,
        "shed_rate": round(len(shed) / len(records), 4) if records else 0.0,
        "error_rate": round(len(errors) / len(records), 4) if records else 0.0,
        "cache_hits": sum(1 for r in served if r.get("cache_hit")),
        "latency_ms": {
            "p50": _pct(50.0),
            "p95": _pct(95.0),
            "p99": _pct(99.0),
            "mean": round(sum(latencies) / len(latencies) * 1e3, 3)
            if latencies else None,
            "max": round(max(latencies) * 1e3, 3) if latencies else None,
        },
        "by_code": dict(sorted(by_code.items())),
        "by_status": dict(sorted(by_status.items())),
    }
    if include_records:
        report["records"] = [dict(r) for r in records]
    return report


def check_report(report: Dict, max_shed_rate: float = 1.0,
                 max_error_rate: float = 0.0,
                 min_served: int = 1) -> List[str]:
    """Gate violations for a report (empty list = green).

    The CI default is strict on *errors* (admission control means overload
    must surface as 429s, never as failures) and permissive on *shedding*
    (shed rate is workload-dependent; cap it per-scenario when needed).
    """
    violations: List[str] = []
    if report["requests"] == 0:
        return ["no requests were issued"]
    if report["served"] < min_served:
        violations.append(
            f"served {report['served']} < required minimum {min_served}"
        )
    if report["error_rate"] > max_error_rate:
        violations.append(
            f"error rate {report['error_rate']:.4f} exceeds "
            f"{max_error_rate:.4f} ({report['errors']} errors, "
            f"{report['transport_errors']} transport)"
        )
    if report["shed_rate"] > max_shed_rate:
        violations.append(
            f"shed rate {report['shed_rate']:.4f} exceeds {max_shed_rate:.4f}"
        )
    if report["served"] >= min_served and report["latency_ms"]["p50"] is None:
        violations.append("no latency percentiles despite served requests")
    return violations


# ----------------------------------------------------------------------- cli


def build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.net.traffic",
        description="Open/closed-loop load generator for the planning front end",
    )
    parser.add_argument("--url", action="append", dest="urls", metavar="URL",
                        help="front-end base URL (repeat for several)")
    parser.add_argument("--mode", default="closed", choices=("closed", "open"))
    parser.add_argument("--duration", type=float, default=5.0, metavar="S")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--rps", type=float, default=None,
                        help="target request rate (required for open loop; "
                             "paces the closed loop when given)")
    parser.add_argument("--arrival", default="poisson",
                        choices=sorted(ARRIVALS))
    parser.add_argument("--mix", default="smoke", choices=mix_names())
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--seed-base", type=int, default=0,
                        help="offset into every mix entry's seed pool")
    parser.add_argument("--retry-unavailable", action="store_true",
                        help="retry 503/dead-server responses on the next "
                             "URL (rolling-restart client contract)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here too")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 unless the report passes the CI gate "
                             "(zero non-429 errors, some served requests)")
    parser.add_argument("--max-shed-rate", type=float, default=1.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    import pathlib
    import sys

    args = build_parser().parse_args(argv)
    config = TrafficConfig(
        urls=tuple(args.urls or ("http://127.0.0.1:8421",)),
        mode=args.mode,
        duration_s=args.duration,
        concurrency=args.concurrency,
        rps=args.rps,
        arrival=args.arrival,
        mix=args.mix,
        seed=args.seed,
        timeout_s=args.timeout,
        seed_base=args.seed_base,
        retry_unavailable=args.retry_unavailable,
    )
    result = run_traffic(config)
    report = build_report(result, config)
    print(json.dumps(report, indent=2))
    if args.out:
        # The file copy carries the per-request rows so it can feed
        # ``python -m repro.obs rca`` drill-downs; stdout stays compact.
        full = build_report(result, config, include_records=True)
        pathlib.Path(args.out).write_text(json.dumps(full, indent=2))
    if args.gate:
        violations = check_report(report, max_shed_rate=args.max_shed_rate)
        for violation in violations:
            print(f"GATE VIOLATION: {violation}", file=sys.stderr)
        return 1 if violations else 0
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
