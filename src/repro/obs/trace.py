"""Span-based tracing with Chrome ``trace_event`` export.

A :class:`Tracer` collects *spans* — named, nested time intervals — into a
per-process buffer.  Instrumentation sites open spans with the context
manager (``with tracer.span("collision"): ...``) or the :func:`traced`
decorator; when the tracer is disabled both collapse to a shared no-op
object, so the planner's hot loop pays one attribute check per phase and
allocates nothing.

Spans are stored as plain dicts (JSON- and pickle-safe), which is what lets
service workers :meth:`~Tracer.drain` their buffers and ship them back over
a ``multiprocessing`` pipe for the supervisor to :meth:`~Tracer.absorb`.
:meth:`Tracer.export_chrome` renders the buffer as Chrome ``trace_event``
JSON (complete ``"X"`` events), which Perfetto and ``chrome://tracing``
load directly.  Timestamps are relative to each tracer's creation, so spans
absorbed from another process share that process's timebase and appear on
its own ``pid`` track.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from functools import wraps
from typing import Callable, Dict, Iterable, List, Optional, Sequence


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one interval into its tracer's buffer."""

    __slots__ = ("tracer", "name", "args", "t0")

    def __init__(self, tracer: "Tracer", name: str, args: Dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.t0 = self.tracer.now()
        self.tracer._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        t1 = tracer.now()
        tracer._depth -= 1
        tracer._append(self.name, self.t0, t1 - self.t0, tracer._depth, self.args)


class Tracer:
    """Per-process span buffer with near-zero cost when disabled.

    Args:
        enabled: record spans; when False, :meth:`span` returns a shared
            no-op context manager.
        clock: monotonic time source (injectable for deterministic tests).
        pid: process id stamped on spans (defaults to ``os.getpid()``).
        process_name: label for the Chrome-trace process track.
    """

    __slots__ = ("enabled", "spans", "pid", "process_name", "_clock", "_epoch", "_depth")

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        pid: Optional[int] = None,
        process_name: str = "repro",
    ):
        self.enabled = enabled
        self.spans: List[Dict] = []
        self.pid = os.getpid() if pid is None else pid
        self.process_name = process_name
        self._clock = clock
        self._epoch = clock()
        self._depth = 0

    # ------------------------------------------------------------- recording

    def now(self) -> float:
        """Seconds since this tracer was created (its span timebase)."""
        return self._clock() - self._epoch

    def span(self, name: str, **args):
        """Open a span; use as ``with tracer.span("phase"): ...``.

        ``args`` must be JSON-safe; they land in the Chrome event's ``args``
        field and are the hook for correlation ids (job id, request id).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def span_at(self, name: str, start: float, end: float, **args) -> None:
        """Record an interval measured externally on this tracer's clock.

        ``start``/``end`` come from earlier :meth:`now` calls — the pool
        supervisor uses this to emit job-level spans whose endpoints were
        stamped inside its dispatch loop.
        """
        if not self.enabled:
            return
        self._append(name, start, max(0.0, end - start), self._depth, args)

    def _append(self, name: str, ts: float, dur: float, depth: int, args: Dict) -> None:
        self.spans.append(
            {
                "name": name,
                "ts": ts,
                "dur": dur,
                "pid": self.pid,
                "tid": 0,
                "depth": depth,
                "args": dict(args) if args else {},
            }
        )

    # ------------------------------------------------------- buffer shipping

    def drain(self) -> List[Dict]:
        """Detach and return the buffered spans (the buffer empties)."""
        spans, self.spans = self.spans, []
        return spans

    def absorb(self, spans: Iterable[Dict], **extra_args) -> None:
        """Fold spans drained from another tracer into this buffer.

        ``extra_args`` are merged into each span's ``args`` — the supervisor
        tags worker spans with the job id they ran under.  Spans keep their
        original ``pid``/timebase, so each worker gets its own trace track.
        """
        for span in spans:
            merged = dict(span)
            if extra_args:
                merged["args"] = {**merged.get("args", {}), **extra_args}
            self.spans.append(merged)

    def reset(self) -> None:
        """Discard buffered spans and restart the timebase."""
        self.spans.clear()
        self._epoch = self._clock()
        self._depth = 0

    # --------------------------------------------------------------- export

    def to_chrome(self) -> Dict:
        """Chrome ``trace_event`` document (``{"traceEvents": [...]}``)."""
        events: List[Dict] = []
        names = {}
        for span in sorted(self.spans, key=lambda s: (s["pid"], s["ts"])):
            names.setdefault(span["pid"], self.process_name)
            events.append(
                {
                    "name": span["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span["ts"] * 1e6, 3),
                    "dur": round(span["dur"] * 1e6, 3),
                    "pid": span["pid"],
                    "tid": span.get("tid", 0),
                    "args": span.get("args", {}),
                }
            )
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label if pid == self.pid else f"{label}-worker-{pid}"},
            }
            for pid, label in sorted(names.items())
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        pathlib.Path(path).write_text(json.dumps(self.to_chrome(), indent=1))


def traced(name: Optional[str] = None, **span_args):
    """Decorator tracing every call of the wrapped function as one span."""

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label, **span_args):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def aggregate_spans(
    spans: Iterable[Dict], names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Reduce span dicts to per-name ``{calls, total_s}`` aggregates.

    ``names`` restricts (and orders) the output; by default every span name
    appears, ordered by descending total time.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        entry = totals.setdefault(span["name"], {"calls": 0, "total_s": 0.0})
        entry["calls"] += 1
        entry["total_s"] += span["dur"]
    if names is None:
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]["total_s"]))
    return {name: totals[name] for name in names if name in totals}


#: Process-global tracer instrumentation sites record into.  Disabled by
#: default so untraced runs pay only the ``enabled`` check.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process global; returns the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous
