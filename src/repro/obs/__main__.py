"""Observability CLI: render run profiles from exported artifacts.

Usage::

    python -m repro.obs report --trace /tmp/t.json --metrics /tmp/m.prom
    python -m repro.obs report --metrics /tmp/m.prom --events /tmp/e.jsonl
    python -m repro.obs report --trace /tmp/t.json --json

``report`` merges the files a traced run exported (``repro.cli --trace
--metrics`` or ``repro.service --trace --metrics --events``) into the
per-phase time/MAC breakdown table; ``--json`` emits the merged structure
machine-readably instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.report import render_report, report_from_files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="merge trace/metrics/events files into a run profile"
    )
    report.add_argument("--trace", default=None,
                        help="Chrome trace_event JSON from a traced run")
    report.add_argument("--metrics", default=None,
                        help="Prometheus .prom (or registry .json) export")
    report.add_argument("--events", default=None,
                        help="JSONL event log from a service run")
    report.add_argument("--json", action="store_true",
                        help="print the merged report as JSON")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        if args.trace is None and args.metrics is None and args.events is None:
            print("repro.obs report: need --trace, --metrics, and/or --events",
                  file=sys.stderr)
            return 2
        report = report_from_files(
            trace=args.trace, metrics=args.metrics, events=args.events
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_report(report))
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
