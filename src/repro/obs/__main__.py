"""Observability CLI: run profiles and root-cause drill-downs.

Usage::

    python -m repro.obs report --trace /tmp/t.json --metrics /tmp/m.prom
    python -m repro.obs report --metrics /tmp/m.prom --events /tmp/e.jsonl
    python -m repro.obs report --trace /tmp/t.json --json

    python -m repro.obs rca baseline.json candidate.json --metric p95
    python -m repro.obs rca chaos.json --split fault=clean --measure wall_seconds
    python -m repro.obs rca-smoke --out rca-report.json

``report`` merges the files a traced run exported (``repro.cli --trace
--metrics`` or ``repro.service --trace --metrics --events``) into the
per-phase time/MAC breakdown table; ``--json`` emits the merged structure
machine-readably instead.

``rca`` runs the :mod:`repro.obs.rca` drill-down over two telemetry /
bench / chaos / traffic dumps (or one dump split by an ``attr=value``
predicate) and prints the ranked attribute combinations explaining the
metric delta.  ``rca-smoke`` is the self-check CI runs: it plants a known
regression slice in a synthetic fixture and fails unless the analyzer
ranks it #1.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

from repro.obs.report import render_report, report_from_files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="merge trace/metrics/events files into a run profile"
    )
    report.add_argument("--trace", default=None,
                        help="Chrome trace_event JSON from a traced run")
    report.add_argument("--metrics", default=None,
                        help="Prometheus .prom (or registry .json) export")
    report.add_argument("--events", default=None,
                        help="JSONL event log from a service run")
    report.add_argument("--json", action="store_true",
                        help="print the merged report as JSON")

    rca = sub.add_parser(
        "rca", help="root-cause drill-down: name the slice that moved a "
                    "metric between two dumps"
    )
    rca.add_argument("baseline", help="baseline dump (telemetry / bench / "
                                      "chaos / traffic JSON)")
    rca.add_argument("candidate", nargs="?", default=None,
                     help="candidate dump; omit when using --split")
    rca.add_argument("--split", default=None, metavar="ATTR=VALUE",
                     help="analyze ONE dump: matching records become the "
                          "baseline, the rest the candidate (attr!=value "
                          "inverts); e.g. fault=clean")
    rca.add_argument("--measure", default="auto",
                     help="record measure to analyze (default: the dump "
                          "kind's primary — plan_seconds / time_s / "
                          "wall_seconds / latency_s)")
    rca.add_argument("--metric", default="p95",
                     choices=("p50", "p95", "p99", "mean", "max", "sum",
                              "count"),
                     help="statistic of the measure (default: %(default)s)")
    rca.add_argument("--top", type=int, default=5,
                     help="findings to report (default: %(default)s)")
    rca.add_argument("--max-depth", type=int, default=3,
                     help="largest attribute combination to search "
                          "(default: %(default)s)")
    rca.add_argument("--min-support", type=int, default=1,
                     help="minimum records a slice needs on either side")
    rca.add_argument("--json", action="store_true",
                     help="print the machine report instead of the table")
    rca.add_argument("--out", default=None, metavar="PATH",
                     help="also write the machine report JSON here")

    smoke = sub.add_parser(
        "rca-smoke", help="self-check: plant a 3x regression slice in a "
                          "synthetic fixture and demand rca ranks it #1"
    )
    smoke.add_argument("--out", default=None, metavar="PATH",
                       help="write the smoke report JSON here (the CI "
                            "artifact)")
    return parser


def _run_rca(args) -> int:
    from repro.obs.rca import DEFAULT_MEASURES, analyze, load_dump, split_records

    if (args.candidate is None) == (args.split is None):
        print("repro.obs rca: need either a candidate dump or --split "
              "attr=value (exactly one)", file=sys.stderr)
        return 2
    try:
        base_kind, base_records = load_dump(args.baseline)
        if args.split is not None:
            cand_kind = base_kind
            baseline, candidate = split_records(base_records, args.split)
        else:
            cand_kind, candidate = load_dump(args.candidate)
            baseline = base_records
            if cand_kind != base_kind:
                raise ValueError(
                    f"dump kinds differ: {args.baseline} is {base_kind}, "
                    f"{args.candidate} is {cand_kind}"
                )
        measure = args.measure
        if measure == "auto":
            measure = DEFAULT_MEASURES[base_kind]
        result = analyze(
            baseline, candidate, measure=measure, metric=args.metric,
            top=args.top, max_depth=args.max_depth,
            min_support=args.min_support,
        )
    except ValueError as exc:
        print(f"repro.obs rca: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(result.to_dict(), indent=2))
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        if args.trace is None and args.metrics is None and args.events is None:
            print("repro.obs report: need --trace, --metrics, and/or --events",
                  file=sys.stderr)
            return 2
        report = report_from_files(
            trace=args.trace, metrics=args.metrics, events=args.events
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_report(report))
        return 0
    if args.command == "rca":
        return _run_rca(args)
    if args.command == "rca-smoke":
        from repro.obs.rca import rca_smoke

        return rca_smoke(out=args.out)
    return 2


if __name__ == "__main__":
    sys.exit(main())
