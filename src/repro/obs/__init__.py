"""``repro.obs``: planner-wide observability — tracing, metrics, events.

Three zero-dependency primitives, wired through every layer of the engine:

* :mod:`repro.obs.trace` — span tracer with a context-manager/decorator
  API, nested span trees, per-process buffers, and Chrome ``trace_event``
  JSON export (loadable in Perfetto).
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms,
  exportable as Prometheus text format and JSON, mergeable across process
  boundaries.
* :mod:`repro.obs.events` — structured JSONL event log with run/job
  correlation ids.
* :mod:`repro.obs.rca` — multi-dimensional root-cause drill-down: given
  two telemetry/bench/chaos/traffic dumps (or one dump split by a
  predicate), rank the attribute combinations explaining a metric delta
  (``python -m repro.obs rca``).

Both the tracer and the registry have process-global instances that start
*disabled*: instrumentation sites pay one attribute check and the planner's
behaviour (and throughput, to within noise) is unchanged until
:func:`configure` switches them on.  ``python -m repro.obs report`` merges
the exported files back into the per-phase cost breakdown the paper's
figures are built from.

Quickstart::

    from repro import obs

    obs.configure(trace=True, metrics=True)
    ... plan ...
    obs.get_tracer().export_chrome("trace.json")
    obs.get_registry().export("metrics.prom")
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.events import EventLog, new_run_id, read_events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bump,
    get_registry,
    observe,
    parse_prometheus,
    set_registry,
)
from repro.obs.rca import (
    DimensionalRecord,
    RcaFinding,
    RcaResult,
    analyze,
    analyze_bench_reports,
    load_dump,
    split_records,
)
from repro.obs.stats import axis_summary, percentile
from repro.obs.trace import (
    Tracer,
    aggregate_spans,
    get_tracer,
    set_tracer,
    traced,
)

#: Canonical planner phases, in loop order — the rows of the Fig-3-style
#: per-phase breakdown ``repro.obs report`` renders.
PHASES = ("sample", "nearest", "repair", "steer", "collision", "rewire")


def configure(trace: Optional[bool] = None, metrics: Optional[bool] = None) -> None:
    """Enable/disable the global tracer and metrics registry in one call."""
    if trace is not None:
        get_tracer().enabled = bool(trace)
    if metrics is not None:
        get_registry().enabled = bool(metrics)


def observing() -> bool:
    """True when either global instrument is currently enabled."""
    return get_tracer().enabled or get_registry().enabled


def install(tracer: Tracer, registry: MetricsRegistry):
    """Swap both process globals at once; returns the previous pair.

    Service workers use this to observe one job with private instances and
    then :func:`restore` — the drained buffers ship back over the pipe.
    """
    return set_tracer(tracer), set_registry(registry)


def restore(previous) -> None:
    """Undo :func:`install` with the pair it returned."""
    set_tracer(previous[0])
    set_registry(previous[1])


class PhaseRecorder:
    """Per-phase instrumentation front end for the planner loop.

    Binds the global tracer and registry once; each :meth:`phase` call then
    opens a span *and* accumulates per-phase wall time / MAC counters, or —
    when both instruments are off — returns a shared no-op context manager
    so the hot loop's overhead is one attribute check per phase.
    """

    __slots__ = ("tracer", "registry", "active", "_seconds", "_macs", "_calls")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else get_registry()
        self.active = self.tracer.enabled or self.registry.enabled
        if self.registry.enabled:
            self._seconds = self.registry.counter(
                "repro_phase_seconds_total", "Wall seconds spent per planner phase"
            )
            self._macs = self.registry.counter(
                "repro_phase_macs_total", "MAC-equivalents accumulated per planner phase"
            )
            self._calls = self.registry.counter(
                "repro_phase_calls_total", "Times each planner phase executed"
            )
        else:
            self._seconds = self._macs = self._calls = None

    def phase(self, name: str, counter=None, **args):
        """Observe one phase: ``with obs.phase("collision", counter): ...``.

        ``counter`` is the run's :class:`~repro.core.counters.OpCounter`;
        when given, the MAC-equivalents recorded during the phase are
        attributed to it in the ``repro_phase_macs_total`` counter.
        """
        if not self.active:
            return _NULL_PHASE
        return _Phase(self, name, counter, args)


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("recorder", "name", "counter", "args", "_t0", "_m0")

    def __init__(self, recorder: PhaseRecorder, name: str, counter, args: Dict):
        self.recorder = recorder
        self.name = name
        self.counter = counter
        self.args = args

    def __enter__(self):
        rec = self.recorder
        # The tracer's clock serves both instruments (it exists even when
        # span recording is off), so metrics-only mode still times phases.
        self._t0 = rec.tracer.now()
        if self.counter is not None and rec._macs is not None:
            self._m0 = self.counter.total_macs()
        else:
            self._m0 = None
        if rec.tracer.enabled:
            rec.tracer._depth += 1
        return self

    def __exit__(self, *exc):
        rec = self.recorder
        tracer = rec.tracer
        if tracer.enabled:
            t1 = tracer.now()
            tracer._depth -= 1
            tracer._append(self.name, self._t0, t1 - self._t0, tracer._depth, self.args)
            elapsed = t1 - self._t0
        else:
            elapsed = None
        if rec._seconds is not None:
            if elapsed is None:
                elapsed = tracer.now() - self._t0
            rec._seconds.inc(elapsed, phase=self.name)
            rec._calls.inc(1.0, phase=self.name)
            if self._m0 is not None:
                delta = self.counter.total_macs() - self._m0
                if delta:
                    rec._macs.inc(delta, phase=self.name)


__all__ = [
    "Counter",
    "DimensionalRecord",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "PhaseRecorder",
    "RcaFinding",
    "RcaResult",
    "Tracer",
    "aggregate_spans",
    "analyze",
    "analyze_bench_reports",
    "axis_summary",
    "bump",
    "configure",
    "get_registry",
    "get_tracer",
    "install",
    "load_dump",
    "new_run_id",
    "observe",
    "observing",
    "parse_prometheus",
    "percentile",
    "read_events",
    "restore",
    "set_registry",
    "set_tracer",
    "split_records",
    "traced",
]
