"""Merge exported trace/metrics/events files into a per-phase breakdown.

``python -m repro.obs report`` is the offline half of the observability
layer: given the Chrome-trace JSON and Prometheus (or JSON) metrics file a
traced run produced, it reconstructs the paper's Fig-3-style cost split —
per planner phase (sample / nearest / steer / collision / rewire / repair),
wall time from the spans and MAC-equivalents from the phase counters, plus
the per-category MAC table and a digest of the event log when one is given.

Everything here reads the *exported* artifacts, so reports can be built on
a different machine (or much later) than the run that produced them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import read_events
from repro.obs.metrics import parse_prometheus

#: Canonical phase order (kept in sync with ``repro.obs.PHASES`` — restated
#: here so the report module stays importable on its own).
PHASE_ORDER = ("sample", "nearest", "repair", "steer", "collision", "rewire")


# ------------------------------------------------------------------ loading


def load_trace(path) -> List[Dict]:
    """Complete ("X") events from a Chrome ``trace_event`` JSON file."""
    data = json.loads(pathlib.Path(path).read_text())
    events = data.get("traceEvents", data if isinstance(data, list) else [])
    return [e for e in events if e.get("ph") == "X"]


def load_metrics(path) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Metric series from a ``.prom`` text or ``.json`` registry export."""
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix != ".json":
        return parse_prometheus(text)
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for entry in json.loads(text).get("metrics", []):
        name = entry["name"]
        if entry["type"] == "histogram":
            out[f"{name}_sum"] = [
                (dict(row["labels"]), float(row["sum"])) for row in entry["series"]
            ]
            out[f"{name}_count"] = [
                (dict(row["labels"]), float(row["count"])) for row in entry["series"]
            ]
        else:
            out[name] = [
                (dict(row["labels"]), float(row["value"])) for row in entry["series"]
            ]
    return out


def _label_map(
    series: List[Tuple[Dict[str, str], float]], label: str
) -> Dict[str, float]:
    """Collapse one metric's series to ``{label_value: summed value}``."""
    out: Dict[str, float] = {}
    for labels, value in series:
        key = labels.get(label)
        if key is not None:
            out[key] = out.get(key, 0.0) + value
    return out


# ----------------------------------------------------------------- building


def build_report(
    trace_events: Optional[List[Dict]] = None,
    metrics: Optional[Dict[str, List[Tuple[Dict[str, str], float]]]] = None,
    events: Optional[List[Dict]] = None,
) -> Dict:
    """Merge loaded artifacts into one plain-data report structure."""
    metrics = metrics or {}
    phase_time: Dict[str, float] = {}
    phase_calls: Dict[str, float] = {}
    other_spans: Dict[str, Dict[str, float]] = {}

    if trace_events:
        for event in trace_events:
            name = event.get("name", "?")
            dur_s = float(event.get("dur", 0.0)) / 1e6
            if name in PHASE_ORDER:
                phase_time[name] = phase_time.get(name, 0.0) + dur_s
                phase_calls[name] = phase_calls.get(name, 0.0) + 1
            else:
                entry = other_spans.setdefault(name, {"calls": 0, "total_s": 0.0})
                entry["calls"] += 1
                entry["total_s"] += dur_s

    # Metrics can stand in for (or corroborate) the trace: the planner's
    # PhaseRecorder maintains the same per-phase axes as counters.
    metric_time = _label_map(metrics.get("repro_phase_seconds_total", []), "phase")
    metric_calls = _label_map(metrics.get("repro_phase_calls_total", []), "phase")
    phase_macs = _label_map(metrics.get("repro_phase_macs_total", []), "phase")
    if not phase_time and metric_time:
        phase_time, phase_calls = metric_time, metric_calls

    total_time = sum(phase_time.values())
    total_macs = sum(phase_macs.values())
    phases = []
    for name in PHASE_ORDER:
        if name not in phase_time and name not in phase_macs:
            continue
        seconds = phase_time.get(name, 0.0)
        calls = int(phase_calls.get(name, 0))
        macs = phase_macs.get(name, 0.0)
        phases.append(
            {
                "phase": name,
                "calls": calls,
                "total_ms": seconds * 1e3,
                "mean_us": (seconds / calls * 1e6) if calls else 0.0,
                "time_pct": (100.0 * seconds / total_time) if total_time else 0.0,
                "macs": macs,
                "mac_pct": (100.0 * macs / total_macs) if total_macs else 0.0,
            }
        )

    # Software-cache effectiveness (collision-result and reused-neighborhood
    # caches, plus the request-level plan cache as ``plan`` and the
    # network shard tier as ``plan_shard``): fold the (cache, event) series
    # into per-cache hit/miss/evict totals.  These count *executed* work —
    # OpCounters keep reporting the modeled cost — so the hit rate here is
    # exactly the work the caches saved the host.
    caches: Dict[str, Dict[str, float]] = {}
    for labels, value in metrics.get("repro_cache_events_total", []):
        name = labels.get("cache")
        event = labels.get("event")
        if name is None or event not in ("hit", "miss", "evict"):
            continue
        entry = caches.setdefault(name, {"hit": 0.0, "miss": 0.0, "evict": 0.0})
        entry[event] += value
    for entry in caches.values():
        lookups = entry["hit"] + entry["miss"]
        entry["hit_rate"] = (entry["hit"] / lookups) if lookups else 0.0

    # Whole-edge validation: motion queries, which execution path served
    # them (edge_kernel / scalar / cache), and the mean interpolation-
    # ladder length from the per-edge histogram.
    edge_paths = dict(sorted(_label_map(
        metrics.get("repro_cc_edge_validations_total", []), "path"
    ).items()))
    ladder_sum = sum(v for _, v in metrics.get("repro_cc_edge_ladder_steps_sum", []))
    ladder_count = sum(v for _, v in metrics.get("repro_cc_edge_ladder_steps_count", []))
    motion_checks = sum(v for _, v in metrics.get("repro_cc_motion_checks_total", []))
    edge_validation: Dict[str, object] = {
        "motion_checks": motion_checks,
        "by_path": edge_paths,
        "ladder_steps_mean": (ladder_sum / ladder_count) if ladder_count else 0.0,
        "ladders_observed": ladder_count,
    }

    report: Dict[str, object] = {
        "phases": phases,
        "edge_validation": edge_validation,
        "phase_time_s": total_time,
        "phase_macs": total_macs,
        "other_spans": dict(
            sorted(other_spans.items(), key=lambda kv: -kv[1]["total_s"])
        ),
        "categories": _label_map(metrics.get("repro_macs_total", []), "category"),
        "caches": dict(sorted(caches.items())),
        # Worker-pool fault/retry/breaker events: the counters the pool
        # bumps as ``repro_service_faults_total{event=...}`` (retries,
        # crashes, timeouts, poisoned dead-letters, breaker trips, ...).
        "service_faults": dict(sorted(_label_map(
            metrics.get("repro_service_faults_total", []), "event"
        ).items())),
        # Portfolio race outcomes: wins per (planner, robot) from
        # ``repro_portfolio_wins_total`` — the series the learned
        # ``portfolio=("auto",)`` default is trained on.
        "portfolio_wins": sorted(
            (
                {
                    "planner": labels.get("planner", "?"),
                    "robot": labels.get("robot", "?"),
                    "wins": value,
                }
                for labels, value in metrics.get(
                    "repro_portfolio_wins_total", []
                )
            ),
            key=lambda row: (-row["wins"], row["planner"], row["robot"]),
        ),
        # Durability: write-ahead journal traffic by record kind, what
        # crash recovery did with the admits it found, and how often the
        # replicated shard tier served a read from a replica after the
        # primary died.
        "durability": {
            "journal_records": dict(sorted(_label_map(
                metrics.get("repro_journal_records_total", []), "kind"
            ).items())),
            "recovery": dict(sorted(_label_map(
                metrics.get("repro_recovery_replayed_total", []), "outcome"
            ).items())),
            "shard_failovers": sum(
                v for _, v in metrics.get("repro_shard_failovers_total", [])
            ),
        },
    }

    if events is not None:
        run_ids = sorted({e.get("run_id", "?") for e in events})
        timestamps = [e["ts"] for e in events if "ts" in e]
        kinds: Dict[str, int] = {}
        for e in events:
            kinds[e.get("event", "?")] = kinds.get(e.get("event", "?"), 0) + 1
        report["events"] = {
            "count": len(events),
            "run_ids": run_ids,
            "span_s": (max(timestamps) - min(timestamps)) if timestamps else 0.0,
            "by_kind": dict(sorted(kinds.items())),
        }
    return report


# ---------------------------------------------------------------- rendering


def _format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    rendered = [
        ["{:.3g}".format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_report(report: Dict) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    blocks: List[str] = []
    phases = report["phases"]
    if phases:
        rows = [
            [
                p["phase"],
                p["calls"],
                p["total_ms"],
                p["mean_us"],
                p["time_pct"],
                p["macs"],
                p["mac_pct"],
            ]
            for p in phases
        ]
        blocks.append(
            "per-phase breakdown\n"
            + _format_table(
                ["phase", "calls", "total_ms", "mean_us", "time_%", "macs", "mac_%"],
                rows,
            )
        )
        blocks.append(
            f"traced phase time: {report['phase_time_s'] * 1e3:.3f} ms   "
            f"phase MACs: {report['phase_macs']:.4g}"
        )
    else:
        blocks.append("no per-phase data (was the run traced with --trace/--metrics?)")

    categories = report.get("categories") or {}
    if categories:
        total = sum(categories.values()) or 1.0
        rows = [
            [name, macs, 100.0 * macs / total]
            for name, macs in sorted(categories.items(), key=lambda kv: -kv[1])
        ]
        blocks.append(
            "MACs by category\n"
            + _format_table(["category", "macs", "mac_%"], rows)
        )

    caches = report.get("caches") or {}
    if caches:
        rows = [
            [
                name,
                int(entry["hit"]),
                int(entry["miss"]),
                int(entry["evict"]),
                100.0 * entry["hit_rate"],
            ]
            for name, entry in caches.items()
        ]
        blocks.append(
            "software caches\n"
            + _format_table(["cache", "hits", "misses", "evicts", "hit_%"], rows)
        )

    edge = report.get("edge_validation") or {}
    if edge.get("motion_checks") or edge.get("by_path"):
        paths = edge.get("by_path") or {}
        rows = [["motion checks", int(edge.get("motion_checks", 0))]]
        rows += [[f"path: {name}", int(value)] for name, value in paths.items()]
        if edge.get("ladders_observed"):
            rows.append(["mean ladder steps", edge["ladder_steps_mean"]])
        blocks.append(
            "edge validation\n" + _format_table(["measure", "value"], rows)
        )

    portfolio = report.get("portfolio_wins") or []
    if portfolio:
        rows = [
            [row["planner"], row["robot"], int(row["wins"])]
            for row in portfolio
        ]
        blocks.append(
            "portfolio race wins\n"
            + _format_table(["planner", "robot", "wins"], rows)
        )

    durability = report.get("durability") or {}
    journal_records = durability.get("journal_records") or {}
    recovery = durability.get("recovery") or {}
    failovers = durability.get("shard_failovers", 0)
    if journal_records or recovery or failovers:
        rows = [
            [f"journal: {kind}", int(value)]
            for kind, value in journal_records.items()
        ]
        rows += [
            [f"recovery: {outcome}", int(value)]
            for outcome, value in recovery.items()
        ]
        if failovers:
            rows.append(["shard failovers", int(failovers)])
        blocks.append(
            "durability\n" + _format_table(["measure", "count"], rows)
        )

    faults = report.get("service_faults") or {}
    if any(faults.values()):
        rows = [
            [name, int(value)]
            for name, value in faults.items()
            if value
        ]
        blocks.append(
            "service faults\n" + _format_table(["event", "count"], rows)
        )

    other = report.get("other_spans") or {}
    if other:
        rows = [
            [name, int(entry["calls"]), entry["total_s"] * 1e3]
            for name, entry in other.items()
        ]
        blocks.append(
            "other spans\n" + _format_table(["span", "calls", "total_ms"], rows)
        )

    events = report.get("events")
    if events:
        kinds = ", ".join(f"{k}={v}" for k, v in events["by_kind"].items())
        blocks.append(
            f"events: {events['count']} over {events['span_s']:.3f} s "
            f"(runs: {', '.join(events['run_ids'])})\n  {kinds}"
        )
    return "\n\n".join(blocks)


def report_from_files(
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    events: Optional[str] = None,
) -> Dict:
    """Convenience: load whichever artifact paths are given and merge."""
    if trace is None and metrics is None and events is None:
        raise ValueError("need at least one of trace/metrics/events")
    return build_report(
        trace_events=load_trace(trace) if trace else None,
        metrics=load_metrics(metrics) if metrics else None,
        events=read_events(events) if events else None,
    )
