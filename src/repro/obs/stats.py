"""Shared descriptive-statistics helpers for the observability layer.

One :func:`percentile` implementation serves every consumer — the service
telemetry axes, the analysis suites, and the ``repro.obs`` report — so the
repo has exactly one definition of "p95".  The interpolation matches the
numpy default (linear between order statistics), but the implementation is
pure Python so the observability layer stays dependency-free.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """q-th percentile (0..100) with linear interpolation; None when empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def axis_summary(values: Sequence[float], digits: int = 6) -> Dict[str, Optional[float]]:
    """p50/p95/mean/max block for one telemetry axis (None-filled when empty)."""
    values = list(values)
    if not values:
        return {"p50": None, "p95": None, "mean": None, "max": None}
    return {
        "p50": round(percentile(values, 50.0), digits),
        "p95": round(percentile(values, 95.0), digits),
        "mean": round(sum(values) / len(values), digits),
        "max": round(max(values), digits),
    }
