"""Structured JSONL event log with run/job correlation ids.

Where spans answer "how long did this take" and metrics answer "how much of
this happened", the event log answers "what happened, in order": one JSON
object per line, each stamped with a wall-clock timestamp, a monotonically
increasing sequence number, and the ``run_id`` that ties every event of one
service run together.  Job-scoped events add ``job_id`` / ``request_id``
fields, which is what lets ``repro.obs report`` (and plain ``grep``)
correlate a trace span, a telemetry record, and the event stream of the
same job.
"""

from __future__ import annotations

import json
import pathlib
import time
import uuid
from typing import Dict, Iterator, List, Optional


def new_run_id() -> str:
    """Fresh 12-hex-char correlation id for one service run."""
    return uuid.uuid4().hex[:12]


class EventLog:
    """In-memory JSONL event buffer bound to one ``run_id``.

    Events are plain dicts; :meth:`emit` stamps ``ts`` (wall clock, so logs
    from different machines interleave sensibly), ``seq``, ``run_id``, and
    the event name.  The buffer serialises with :meth:`to_jsonl` /
    :meth:`dump` and is cheap enough to keep always-on — one dict append
    per event.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id if run_id is not None else new_run_id()
        self.records: List[Dict] = []
        self._seq = 0

    def emit(self, event: str, **fields) -> Dict:
        """Append one event; returns the stored record."""
        record = {
            "ts": round(time.time(), 6),
            "seq": self._seq,
            "run_id": self.run_id,
            "event": event,
        }
        record.update(fields)
        self._seq += 1
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.records)

    def to_jsonl(self) -> str:
        return "".join(json.dumps(r, sort_keys=True) + "\n" for r in self.records)

    def dump(self, path) -> None:
        """Write the buffer as JSON Lines."""
        pathlib.Path(path).write_text(self.to_jsonl())


def read_events(path) -> List[Dict]:
    """Load a JSONL event file back into a list of dicts."""
    out = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
