"""``repro.obs.rca``: multi-dimensional root-cause drill-down analytics.

Every gate in the repo — the bench perf gate, the chaos harness, the net
traffic gate — compares *aggregates*: a p95 moved, a shed rate crossed a
line.  This module answers the next question: **which slice moved it**.
Given two telemetry dumps (baseline vs candidate — or one dump split by a
predicate such as fault-armed vs clean), it searches the lattice of
attribute combinations (robot × obstacles × planner mode × wave width ×
cache hit × fault state × ...) bottom-up and ranks the combinations that
explain the metric delta, PSqueeze-style: explanatory power from a
counterfactual replacement, a ripple-effect consistency check over the
slice's leaf cells, and deterministic tie-breaking so the same two dumps
always name the same slice.

The pipeline has three stages:

1. **Normalization** — :class:`DimensionalRecord` flattens heterogeneous
   dump formats (:class:`~repro.service.telemetry.TelemetrySink` dumps,
   ``repro.bench`` reports, chaos-harness reports, ``repro.net.traffic``
   reports) into one ``attributes -> values`` + ``measures -> floats``
   schema.  :func:`load_dump` sniffs the kind and enforces the ``schema``
   / ``emitter`` stamps the dumps carry, so a mismatched or future dump is
   rejected instead of mis-parsed.
2. **Search** — :func:`analyze` enumerates attribute subsets bottom-up
   (single attributes first, then pairs, then triples, up to
   ``max_depth``), scores every concrete slice, prunes refinements that a
   more general ancestor already explains (the ripple effect: a true root
   cause moves *all* its leaf cells, so adding attributes adds no power),
   and returns the ranked :class:`RcaResult`.
3. **Reporting** — :meth:`RcaResult.render` prints the human table plus
   the one-line verdict ("robot=xarm7 × wave_width=16 × cache_hit=miss
   explains 83% of the p95 delta"); :meth:`RcaResult.to_dict` is the
   machine JSON the CI artifacts carry.

CLI (see ``repro.obs.__main__``)::

    python -m repro.obs rca baseline.json candidate.json --metric p95
    python -m repro.obs rca chaos.json --split fault=clean --measure wall_seconds
    python -m repro.obs rca-smoke --out rca-report.json

Everything here is stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.stats import percentile

__all__ = [
    "DimensionalRecord",
    "RcaFinding",
    "RcaResult",
    "analyze",
    "analyze_bench_reports",
    "load_dump",
    "records_from_bench",
    "records_from_chaos",
    "records_from_telemetry",
    "records_from_traffic",
    "render_smoke_fixture",
    "rca_smoke",
    "split_records",
]

#: Version of the machine-readable RCA report this module emits.
RCA_SCHEMA = 1

#: Highest dump ``schema`` this module understands, per emitter kind.  A
#: dump stamped newer than this is rejected (it may carry fields we would
#: silently mis-parse); an *unstamped* dump is treated as legacy v0 and
#: accepted only when its shape is unambiguous.
SUPPORTED_SCHEMAS = {
    "telemetry": 1,
    "bench": 1,
    "chaos": 1,
    "traffic": 1,
}

EMITTERS = {
    "repro.service.telemetry": "telemetry",
    "repro.net.traffic": "traffic",
    "repro.faults.chaos": "chaos",
    "repro.bench": "bench",
}

#: Default measure per dump kind when the caller asks for ``auto``.
DEFAULT_MEASURES = {
    "telemetry": "plan_seconds",
    "bench": "time_s",
    "chaos": "wall_seconds",
    "traffic": "latency_s",
}

#: Metrics the analyzer can compute over a measure.  ``sum`` and ``count``
#: decompose additively (exact per-slice attribution); the order statistics
#: and the mean use the counterfactual-replacement estimator.
METRICS = ("p50", "p95", "p99", "mean", "max", "sum", "count")

#: Placeholder for a record that does not carry an attribute a slice keys
#: on — slices over that attribute treat the record as its own cell.
MISSING = "-"


@dataclass
class DimensionalRecord:
    """One normalized telemetry row: attribute labels plus numeric measures.

    ``attributes`` maps dimension name to its (stringified) value — the
    axes the lattice search slices on.  ``measures`` maps measure name to
    a float — the quantities metrics are computed over.
    """

    attributes: Dict[str, str]
    measures: Dict[str, float]


# ------------------------------------------------------------ normalization


def _stringify_attrs(raw: Dict) -> Dict[str, str]:
    return {str(k): str(v) for k, v in raw.items() if v is not None}


def _schema_error(kind: str, found) -> ValueError:
    return ValueError(
        f"{kind} dump carries schema {found!r} but this build supports "
        f"up to {SUPPORTED_SCHEMAS[kind]} — upgrade repro or re-dump with "
        "a matching emitter"
    )


def _check_schema(payload: Dict, kind: str) -> None:
    """Reject dumps stamped newer than we understand, or mis-labelled."""
    emitter = payload.get("emitter")
    if emitter is not None:
        expected = EMITTERS.get(emitter)
        if expected is None and kind != "bench":
            raise ValueError(f"unknown dump emitter {emitter!r}")
        if expected is not None and expected != kind:
            raise ValueError(
                f"dump emitter {emitter!r} is a {expected} dump, "
                f"not {kind}"
            )
    schema = payload.get("schema")
    if schema is None:
        return  # legacy v0 dump: accepted, parsed by shape
    if not isinstance(schema, int) or schema < 0:
        raise _schema_error(kind, schema)
    if schema > SUPPORTED_SCHEMAS[kind]:
        raise _schema_error(kind, schema)


def records_from_telemetry(payload: Dict) -> List[DimensionalRecord]:
    """Flatten a :class:`~repro.service.telemetry.TelemetrySink` dump.

    Needs the per-job ``records`` rows (``TelemetrySink.dump`` writes them
    by default); the aggregate summary alone cannot be drilled into.
    """
    _check_schema(payload, "telemetry")
    rows = payload.get("records")
    if rows is None:
        raise ValueError(
            "telemetry dump has no per-job 'records' rows — re-dump with "
            "include_records=True (the TelemetrySink.dump default)"
        )
    out: List[DimensionalRecord] = []
    for row in rows:
        attrs = _stringify_attrs(row.get("attributes") or {})
        attrs["status"] = str(row.get("status"))
        attrs["cache_hit"] = "hit" if row.get("cache_hit") else "miss"
        measures = {
            "ok": 1.0 if row.get("status") == "ok" else 0.0,
            "degraded": 1.0 if row.get("status") == "degraded" else 0.0,
        }
        for name in ("plan_seconds", "wall_seconds", "queue_wait_s",
                     "total_macs", "samples", "attempts"):
            value = row.get(name)
            if value is not None:
                measures[name] = float(value)
        out.append(DimensionalRecord(attrs, measures))
    return out


def records_from_bench(payload: Dict) -> List[DimensionalRecord]:
    """Flatten a ``repro.bench`` report (kernel / e2e / wave sections).

    Every section's primary timing lands on the shared ``time_s`` measure
    so one RCA run attributes the whole report's time delta; the
    section-specific raw measures ride along.
    """
    _check_schema(payload, "bench")
    out: List[DimensionalRecord] = []
    for row in payload.get("kernels", []):
        attrs = {"section": "kernel", "kernel": str(row["kernel"]),
                 "dim": str(row["dim"]), "size": str(row["size"])}
        out.append(DimensionalRecord(attrs, {
            "time_s": float(row["batch_s"]),
            "batch_s": float(row["batch_s"]),
            "reference_s": float(row["reference_s"]),
        }))
    for row in payload.get("end_to_end", []):
        attrs = {"section": "e2e", "case": str(row["case"]),
                 "robot": str(row["robot"]),
                 "obstacles": str(row["obstacles"]),
                 "variant": str(row["variant"])}
        out.append(DimensionalRecord(attrs, {
            "time_s": float(row["batch_s"]),
            "batch_s": float(row["batch_s"]),
            "reference_s": float(row["reference_s"]),
        }))
    for row in payload.get("wave", []):
        attrs = {"section": "wave", "case": str(row["case"]),
                 "robot": str(row["robot"]),
                 "obstacles": str(row["obstacles"]),
                 "variant": str(row["variant"]),
                 "wave_width": str(row["wave_width"])}
        out.append(DimensionalRecord(attrs, {
            "time_s": float(row["wave_s"]),
            "wave_s": float(row["wave_s"]),
            "scalar_s": float(row["scalar_s"]),
        }))
    for row in payload.get("edge", []):
        attrs = {"section": "edge", "case": str(row["case"]),
                 "robot": str(row["robot"]),
                 "obstacles": str(row["obstacles"]),
                 "checker": str(row["checker"]),
                 "wave_width": str(row["wave_width"])}
        out.append(DimensionalRecord(attrs, {
            "time_s": float(row["edge_s"]),
            "edge_s": float(row["edge_s"]),
            "pr4_s": float(row["pr4_s"]),
            "cached_s": float(row["cached_s"]),
        }))
    return out


def records_from_chaos(payload: Dict) -> List[DimensionalRecord]:
    """Flatten a chaos-harness report's per-job rows."""
    _check_schema(payload, "chaos")
    rows = payload.get("records")
    if rows is None:
        raise ValueError(
            "chaos report has no per-job 'records' rows — rerun the chaos "
            "harness with a build that emits them"
        )
    out: List[DimensionalRecord] = []
    for row in rows:
        attrs = _stringify_attrs(row.get("attributes") or {})
        category = str(row.get("category", "?"))
        attrs["category"] = category
        # "fault" may already be set from the request attributes; the
        # schedule's category is authoritative for armed-vs-clean.
        attrs["fault"] = "clean" if category == "healthy" else "armed"
        attrs["status"] = str(row.get("status"))
        attrs["cache_hit"] = "hit" if row.get("cache_hit") else "miss"
        measures = {"ok": 1.0 if row.get("status") == "ok" else 0.0}
        for name in ("plan_seconds", "wall_seconds", "queue_wait_s",
                     "attempts"):
            value = row.get(name)
            if value is not None:
                measures[name] = float(value)
        out.append(DimensionalRecord(attrs, measures))
    return out


def records_from_traffic(payload: Dict) -> List[DimensionalRecord]:
    """Flatten a ``repro.net.traffic`` report's per-request rows."""
    _check_schema(payload, "traffic")
    rows = payload.get("records")
    if rows is None:
        raise ValueError(
            "traffic report has no per-request 'records' rows — write the "
            "report with --out (records are included there) or "
            "build_report(..., include_records=True)"
        )
    run_attrs = {}
    for name in ("mix", "arrival", "mode"):
        if payload.get(name) is not None:
            run_attrs[name] = str(payload[name])
    out: List[DimensionalRecord] = []
    for row in rows:
        attrs = dict(run_attrs)
        for name in ("robot", "obstacles", "samples", "deadline"):
            if row.get(name) is not None:
                attrs[name] = str(row[name])
        code = int(row.get("code", 0))
        attrs["code"] = str(code)
        attrs["status"] = str(row.get("status"))
        attrs["cache_hit"] = "hit" if row.get("cache_hit") else "miss"
        if code in (200, 202):
            outcome = "served"
        elif code == 429:
            outcome = "shed"
        else:
            outcome = "error"
        attrs["outcome"] = outcome
        measures = {
            "latency_s": float(row.get("latency_s", 0.0)),
            "served": 1.0 if outcome == "served" else 0.0,
            "shed": 1.0 if outcome == "shed" else 0.0,
            "error": 1.0 if outcome == "error" else 0.0,
        }
        out.append(DimensionalRecord(attrs, measures))
    return out


_LOADERS = {
    "telemetry": records_from_telemetry,
    "bench": records_from_bench,
    "chaos": records_from_chaos,
    "traffic": records_from_traffic,
}


def _sniff_kind(payload: Dict) -> str:
    """Identify which dump format ``payload`` is."""
    emitter = payload.get("emitter")
    if emitter is not None:
        kind = EMITTERS.get(emitter)
        if kind is None:
            raise ValueError(f"unknown dump emitter {emitter!r}")
        return kind
    # Legacy (pre-schema) dumps: sniff by structural fingerprint.
    if "kernels" in payload and ("host" in payload or "mode" in payload):
        return "bench"
    if "digest" in payload and "categories" in payload:
        return "chaos"
    if "by_code" in payload and "shed_rate" in payload:
        return "traffic"
    if "records" in payload and ("latency_s" in payload or "jobs" in payload):
        return "telemetry"
    raise ValueError(
        "cannot identify dump kind: expected a telemetry, bench, chaos, "
        "or traffic dump (none of their fingerprints matched)"
    )


def load_dump(path) -> Tuple[str, List[DimensionalRecord]]:
    """Read a JSON dump, sniff its kind, and normalize its rows.

    Returns ``(kind, records)``; raises :class:`ValueError` on unknown or
    newer-than-supported dumps (the schema satellite: reject, never
    mis-parse).
    """
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object dump")
    kind = _sniff_kind(payload)
    return kind, _LOADERS[kind](payload)


def split_records(
    records: Sequence[DimensionalRecord], predicate: str
) -> Tuple[List[DimensionalRecord], List[DimensionalRecord]]:
    """Split one record set into (baseline, candidate) by a predicate.

    ``"attr=value"`` puts matching records in the *baseline* (e.g.
    ``fault=clean``: clean jobs are the reference population) and the rest
    in the candidate; ``"attr!=value"`` inverts the match.
    """
    negate = "!=" in predicate
    attr, _, value = predicate.partition("!=" if negate else "=")
    attr, value = attr.strip(), value.strip()
    if not attr or not value:
        raise ValueError(
            f"bad split predicate {predicate!r}; use attr=value or attr!=value"
        )
    matches = lambda r: (r.attributes.get(attr, MISSING) == value) ^ negate
    baseline = [r for r in records if matches(r)]
    candidate = [r for r in records if not matches(r)]
    if not baseline or not candidate:
        raise ValueError(
            f"split {predicate!r} left an empty side "
            f"({len(baseline)} baseline / {len(candidate)} candidate records)"
        )
    return baseline, candidate


# ------------------------------------------------------------------ metrics


def _metric_value(values: Sequence[float], metric: str) -> Optional[float]:
    if metric == "count":
        return float(len(values))
    if not values:
        return None
    if metric == "sum":
        return float(sum(values))
    if metric == "mean":
        return sum(values) / len(values)
    if metric == "max":
        return float(max(values))
    if metric in ("p50", "p95", "p99"):
        return percentile(values, float(metric[1:]))
    raise ValueError(f"unknown metric {metric!r}; known: {METRICS}")


def _quantile_resample(sorted_values: Sequence[float], n: int) -> List[float]:
    """``n`` quantile-spaced draws from an (already sorted) empirical
    distribution — the deterministic stand-in for "what would these n
    records look like if they behaved like that population"."""
    m = len(sorted_values)
    if n <= 0 or m == 0:
        return []
    if m == 1:
        return [float(sorted_values[0])] * n
    if n == 1:
        return [percentile(sorted_values, 50.0)]
    out = []
    for i in range(n):
        rank = (i / (n - 1)) * (m - 1)
        lo = int(rank)
        hi = min(lo + 1, m - 1)
        frac = rank - lo
        out.append(float(sorted_values[lo] * (1.0 - frac)
                         + sorted_values[hi] * frac))
    return out


# ------------------------------------------------------------------- search


@dataclass
class RcaFinding:
    """One ranked attribute combination explaining part of the delta."""

    attributes: Dict[str, str]
    depth: int
    support_base: int
    support_cand: int
    baseline_value: Optional[float]
    candidate_value: Optional[float]
    explained_fraction: float
    consistency: float
    score: float

    def label(self) -> str:
        return " × ".join(
            f"{k}={v}" for k, v in sorted(self.attributes.items())
        )

    def to_dict(self) -> Dict:
        return {
            "attributes": dict(sorted(self.attributes.items())),
            "label": self.label(),
            "depth": self.depth,
            "support_base": self.support_base,
            "support_cand": self.support_cand,
            "baseline_value": self.baseline_value,
            "candidate_value": self.candidate_value,
            "explained_fraction": round(self.explained_fraction, 6),
            "consistency": round(self.consistency, 4),
            "score": round(self.score, 6),
        }


@dataclass
class RcaResult:
    """The analyzer's output: overall delta plus the ranked findings."""

    metric: str
    measure: str
    baseline_value: Optional[float]
    candidate_value: Optional[float]
    baseline_records: int
    candidate_records: int
    findings: List[RcaFinding] = field(default_factory=list)
    note: Optional[str] = None

    @property
    def delta(self) -> Optional[float]:
        if self.baseline_value is None or self.candidate_value is None:
            return None
        return self.candidate_value - self.baseline_value

    def to_dict(self) -> Dict:
        return {
            "schema": RCA_SCHEMA,
            "emitter": "repro.obs.rca",
            "metric": self.metric,
            "measure": self.measure,
            "baseline": {"value": self.baseline_value,
                         "records": self.baseline_records},
            "candidate": {"value": self.candidate_value,
                          "records": self.candidate_records},
            "delta": self.delta,
            "findings": [f.to_dict() for f in self.findings],
            "note": self.note,
        }

    def render(self) -> str:
        """Human-readable ranked report."""
        head = f"{self.metric}({self.measure})"
        fmt = lambda v: "n/a" if v is None else f"{v:.6g}"
        lines = [
            f"RCA drill-down: {head} baseline {fmt(self.baseline_value)} "
            f"-> candidate {fmt(self.candidate_value)} "
            f"(delta {fmt(self.delta)}; "
            f"{self.baseline_records}/{self.candidate_records} records)"
        ]
        if self.note:
            lines.append(f"note: {self.note}")
        if not self.findings:
            lines.append("no attribute combination explains the delta")
            return "\n".join(lines)
        width = max(len(f.label()) for f in self.findings)
        lines.append(
            f"{'rank':>4}  {'slice':<{width}}  {'explains':>8}  "
            f"{'consist':>7}  {'base':>10}  {'cand':>10}  {'n(b/c)':>9}"
        )
        for rank, f in enumerate(self.findings, start=1):
            lines.append(
                f"{rank:>4}  {f.label():<{width}}  "
                f"{f.explained_fraction:>7.1%}  {f.consistency:>7.2f}  "
                f"{fmt(f.baseline_value):>10}  {fmt(f.candidate_value):>10}  "
                f"{f.support_base:>4}/{f.support_cand}"
            )
        top = self.findings[0]
        lines.append(
            f"top finding: {top.label()} explains "
            f"{top.explained_fraction:.0%} of the {head} delta"
        )
        return "\n".join(lines)


def _slice_groups(
    records: Sequence[Tuple[int, DimensionalRecord]], subset: Tuple[str, ...]
) -> Dict[Tuple[str, ...], List[int]]:
    """Group record indices by their value tuple over ``subset``."""
    groups: Dict[Tuple[str, ...], List[int]] = {}
    for index, record in records:
        key = tuple(record.attributes.get(a, MISSING) for a in subset)
        groups.setdefault(key, []).append(index)
    return groups


def _consistency(
    base_members: Sequence[DimensionalRecord],
    cand_members: Sequence[DimensionalRecord],
    measure: str,
    slice_delta: float,
) -> float:
    """Ripple-effect check: a true root-cause slice moves *all* its leaf
    cells the same way and by a comparable amount.  Returns the
    candidate-support-weighted fraction of both-sided leaf cells (full
    attribute combinations inside the slice) whose mean shifted in the
    slice's direction by at least half the slice's own mean shift —
    magnitude-aware, so an over-general slice whose unmoved sibling cells
    merely wiggle with noise scores below the exact regressed cell."""
    def cells(members):
        out: Dict[Tuple, List[float]] = {}
        for r in members:
            if measure not in r.measures:
                continue
            key = tuple(sorted(r.attributes.items()))
            out.setdefault(key, []).append(r.measures[measure])
        return out

    base_cells = cells(base_members)
    cand_cells = cells(cand_members)
    threshold = 0.5 * abs(slice_delta)
    agree = total = 0
    for key, cand_values in cand_cells.items():
        base_values = base_cells.get(key)
        if not base_values:
            continue
        cell_delta = (sum(cand_values) / len(cand_values)
                      - sum(base_values) / len(base_values))
        total += len(cand_values)
        moved = abs(cell_delta) >= threshold
        same_way = cell_delta == 0.0 or (cell_delta > 0) == (slice_delta > 0)
        if (moved and same_way) or threshold == 0.0:
            agree += len(cand_values)
    if total == 0:
        return 1.0
    return agree / total


def analyze(
    baseline: Sequence[DimensionalRecord],
    candidate: Sequence[DimensionalRecord],
    measure: str,
    metric: str = "p95",
    top: int = 5,
    max_depth: int = 3,
    min_support: int = 1,
    min_explained: float = 0.02,
) -> RcaResult:
    """Isolate the attribute combinations explaining the metric delta.

    Bottom-up lattice search: attribute subsets of size 1, then 2, up to
    ``max_depth``.  For each concrete slice the **explanatory power** is
    the fraction of the overall delta removed by a counterfactual
    candidate population in which the slice's records behave like their
    baseline distribution (quantile-resampled, so order-statistic metrics
    like p95 are handled honestly; ``sum``/``count`` decompose additively
    and skip the counterfactual).  **Consistency** is the ripple-effect
    check over the slice's leaf cells.  Refinements that add attributes
    without adding explanatory power are pruned in favour of their more
    general ancestor; surviving findings are ranked by ``score =
    explained × (0.25 + 0.75 × consistency)`` with deterministic
    tie-breaking (shallower slice first, then label order).
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; known: {METRICS}")
    base_rows = [(i, r) for i, r in enumerate(baseline)
                 if measure in r.measures]
    cand_rows = [(i, r) for i, r in enumerate(candidate)
                 if measure in r.measures]
    base_values = [r.measures[measure] for _, r in base_rows]
    cand_values = [r.measures[measure] for _, r in cand_rows]
    m_base = _metric_value(base_values, metric)
    m_cand = _metric_value(cand_values, metric)
    result = RcaResult(
        metric=metric, measure=measure,
        baseline_value=m_base, candidate_value=m_cand,
        baseline_records=len(base_rows), candidate_records=len(cand_rows),
    )
    if m_base is None or m_cand is None:
        result.note = f"one side has no records carrying measure {measure!r}"
        return result
    delta = m_cand - m_base
    scale = max(abs(m_base), abs(m_cand), 1e-12)
    if abs(delta) <= 1e-9 * scale:
        result.note = "no material delta between the two populations"
        return result

    attr_names = sorted(
        {a for _, r in base_rows for a in r.attributes}
        | {a for _, r in cand_rows for a in r.attributes}
    )
    base_sorted_all = sorted(base_values)
    cand_by_index = {i: v for (i, _), v in zip(cand_rows, cand_values)}
    max_depth = max(1, min(max_depth, len(attr_names)))

    kept: List[RcaFinding] = []
    for depth in range(1, max_depth + 1):
        for subset in itertools.combinations(attr_names, depth):
            base_groups = _slice_groups(base_rows, subset)
            cand_groups = _slice_groups(cand_rows, subset)
            for key in sorted(set(base_groups) | set(cand_groups)):
                b_idx = base_groups.get(key, [])
                c_idx = cand_groups.get(key, [])
                if max(len(b_idx), len(c_idx)) < min_support:
                    continue
                if len(b_idx) == len(base_rows) and len(c_idx) == len(cand_rows):
                    continue  # the whole population — not a slice
                if (len(c_idx) == len(cand_rows) and not b_idx) or \
                        (len(b_idx) == len(base_rows) and not c_idx):
                    # Coincides with one entire side (e.g. the attribute a
                    # --split predicate keyed on): trivially "explains"
                    # everything without naming anything.
                    continue
                slice_base = [baseline[i].measures[measure] for i in b_idx]
                slice_cand = [candidate[i].measures[measure] for i in c_idx]
                if metric in ("sum", "count"):
                    # Additive metrics decompose exactly.
                    b_agg = _metric_value(slice_base, metric) or 0.0
                    c_agg = _metric_value(slice_cand, metric) or 0.0
                    explained = (c_agg - b_agg) / delta
                else:
                    explained = _counterfactual_explained(
                        cand_values, cand_by_index, set(c_idx),
                        slice_base, slice_cand, base_sorted_all,
                        m_cand, delta, metric,
                    )
                if explained < min_explained:
                    continue
                direction = _slice_direction(slice_base, slice_cand, delta)
                consistency = _consistency(
                    [baseline[i] for i in b_idx],
                    [candidate[i] for i in c_idx],
                    measure, direction,
                )
                finding = RcaFinding(
                    attributes=dict(zip(subset, key)),
                    depth=depth,
                    support_base=len(b_idx),
                    support_cand=len(c_idx),
                    baseline_value=_metric_value(slice_base, metric),
                    candidate_value=_metric_value(slice_cand, metric),
                    explained_fraction=explained,
                    consistency=consistency,
                    score=explained * (0.25 + 0.75 * consistency),
                )
                if not _dominated(finding, kept):
                    kept.append(finding)

    kept.sort(key=lambda f: (-f.score, -f.explained_fraction,
                             f.depth, f.label()))
    result.findings = kept[:top]
    return result


def _slice_direction(slice_base, slice_cand, delta: float) -> float:
    """Sign of the slice's own movement (falls back to the overall delta)."""
    if slice_base and slice_cand:
        moved = (sum(slice_cand) / len(slice_cand)
                 - sum(slice_base) / len(slice_base))
        if moved != 0.0:
            return moved
    return delta


def _counterfactual_explained(
    cand_values: Sequence[float],
    cand_by_index: Dict[int, float],
    slice_indices,
    slice_base: Sequence[float],
    slice_cand: Sequence[float],
    base_sorted_all: Sequence[float],
    m_cand: float,
    delta: float,
    metric: str,
) -> float:
    """Explanatory power via counterfactual replacement.

    Rebuild the candidate population with the slice's records replaced by
    draws from the slice's *baseline* distribution (or, for a slice new in
    the candidate, the overall baseline distribution; a slice that
    vanished gets its baseline records restored), recompute the metric,
    and report the fraction of the overall delta that removal undoes.
    """
    rest = [v for i, v in cand_by_index.items() if i not in slice_indices]
    if slice_cand:
        source = sorted(slice_base) if slice_base else base_sorted_all
        replaced = _quantile_resample(source, len(slice_cand))
    else:
        replaced = list(slice_base)  # restore the vanished slice
    m_cf = _metric_value(rest + replaced, metric)
    if m_cf is None:
        return 0.0
    return (m_cand - m_cf) / delta


def _dominated(finding: RcaFinding, kept: Sequence[RcaFinding]) -> bool:
    """Ripple-effect pruning: drop a refinement whose ancestor (a subset of
    its attribute assignments, found earlier in the bottom-up sweep)
    already scores at least as well — the extra attributes add no
    explanatory power, so the general slice is the better name."""
    if finding.depth == 1:
        return False
    items = finding.attributes.items()
    for other in kept:
        if other.depth < finding.depth and other.attributes.items() <= items:
            if other.score + 1e-9 >= finding.score:
                return True
    return False


# -------------------------------------------------------------- bench bridge


def analyze_bench_reports(
    baseline_payload: Dict,
    candidate_payload: Dict,
    metric: str = "sum",
    measure: str = "time_s",
    top: int = 5,
) -> RcaResult:
    """RCA over two ``repro.bench`` reports (baseline vs candidate).

    The default ``sum(time_s)`` decomposes the total wall-time delta
    exactly across (section × kernel × dim × size / case) cells, so a
    perf-gate failure names the offending cell(s).  Cells present in only
    one report still surface (as vanished/new slices).
    """
    return analyze(
        records_from_bench(baseline_payload),
        records_from_bench(candidate_payload),
        measure=measure, metric=metric, top=top, min_support=1,
    )


# -------------------------------------------------------------------- smoke


def render_smoke_fixture(
    slow_slice: Optional[Dict[str, str]] = None,
    factor: float = 3.0,
    per_cell: int = 8,
    seed: int = 11,
) -> Tuple[List[DimensionalRecord], List[DimensionalRecord]]:
    """Synthetic baseline/candidate telemetry populations with one planted
    regression slice (default: ``xarm7 × wave_width=16 × cache-miss``
    slowed ``factor``×).  Deterministic under ``seed``."""
    import random as _random

    if slow_slice is None:
        slow_slice = {"robot": "xarm7", "wave_width": "16",
                      "cache_hit": "miss"}
    rng = _random.Random(seed)
    base_latency = {"mobile2d": 0.004, "xarm7": 0.020, "rozum": 0.015}
    wave_scale = {"1": 1.0, "8": 0.7, "16": 0.6}

    def population(planted: bool) -> List[DimensionalRecord]:
        records = []
        for robot in ("mobile2d", "xarm7", "rozum"):
            for wave in ("1", "8", "16"):
                for cache in ("hit", "miss"):
                    attrs = {"robot": robot, "wave_width": wave,
                             "cache_hit": cache,
                             "mode": "wave" if wave != "1" else "scalar"}
                    for _ in range(per_cell):
                        if cache == "hit":
                            latency = 0.0002 * (1.0 + 0.2 * rng.random())
                        else:
                            latency = (base_latency[robot] * wave_scale[wave]
                                       * (1.0 + 0.3 * rng.random()))
                        if planted and all(
                            attrs.get(k) == v for k, v in slow_slice.items()
                        ):
                            latency *= factor
                        records.append(DimensionalRecord(
                            dict(attrs),
                            {"plan_seconds": latency,
                             "wall_seconds": latency * 1.1},
                        ))
        return records

    return population(planted=False), population(planted=True)


def rca_smoke(out: Optional[str] = None, log=print) -> int:
    """End-to-end self-check: plant a regression, demand RCA names it.

    Two synthetic cases, both deterministic:

    1. **Telemetry**: a robot-grid population with ``xarm7 × wave_width=16
       × cache-miss`` slowed 3× must rank that exact combination #1 on the
       p95 delta.
    2. **Bench gate**: a doctored candidate bench report with one kernel
       cell slowed 3× must fail :func:`repro.bench.compare_to_baseline`,
       and :func:`analyze_bench_reports` must rank that cell #1.

    Writes the machine report to ``out`` when given; returns 0 on success,
    1 with a diagnostic when either case mis-ranks.
    """
    failures: List[str] = []
    planted = {"robot": "xarm7", "wave_width": "16", "cache_hit": "miss"}
    baseline, candidate = render_smoke_fixture(slow_slice=planted)
    telemetry_result = analyze(
        baseline, candidate, measure="plan_seconds", metric="p95", top=5
    )
    log(telemetry_result.render())
    if not telemetry_result.findings:
        failures.append("telemetry case: no findings at all")
    elif telemetry_result.findings[0].attributes != planted:
        failures.append(
            "telemetry case: planted slice "
            f"{planted} not ranked #1 "
            f"(got {telemetry_result.findings[0].attributes})"
        )

    # Bench-gate case: a planted kernel-cell regression must both trip the
    # gate and be named by the drill-down.
    from repro.bench import compare_to_baseline

    def bench_report(slow: bool) -> Dict:
        kernels = []
        for kernel in ("aabb_aabb_grid", "obb_obb_pairs", "nearest_index"):
            for dim in (2, 3):
                batch_s = 1e-4 * (1 + dim)
                if slow and kernel == "obb_obb_pairs" and dim == 3:
                    batch_s *= 3.0
                kernels.append({
                    "kernel": kernel, "dim": dim, "size": "256",
                    "batch_s": batch_s, "reference_s": batch_s * 10,
                    "speedup": 10.0,
                })
        return {"schema": 1, "mode": "quick", "kernels": kernels,
                "end_to_end": [], "wave": []}

    bench_base = bench_report(slow=False)
    bench_cand = bench_report(slow=True)
    gate_failures = compare_to_baseline(bench_cand, bench_base, factor=2.0)
    if not gate_failures:
        failures.append("bench case: planted 3x regression did not trip the gate")
    bench_result = analyze_bench_reports(bench_base, bench_cand)
    log(bench_result.render())
    expected_cell = {"section": "kernel", "kernel": "obb_obb_pairs",
                     "dim": "3", "size": "256"}
    if not bench_result.findings:
        failures.append("bench case: no findings at all")
    else:
        got = bench_result.findings[0].attributes
        if not (got.items() <= expected_cell.items()) or \
                got.get("kernel") != "obb_obb_pairs":
            failures.append(
                f"bench case: planted cell {expected_cell} not ranked #1 "
                f"(got {got})"
            )

    if out is not None:
        payload = {
            "schema": RCA_SCHEMA,
            "emitter": "repro.obs.rca",
            "fixture": "rca-smoke",
            "passed": not failures,
            "failures": failures,
            "telemetry_case": telemetry_result.to_dict(),
            "bench_case": bench_result.to_dict(),
        }
        pathlib.Path(out).write_text(json.dumps(payload, indent=2))
        log(f"rca-smoke report written to {out}")
    for message in failures:
        log(f"RCA SMOKE FAILURE: {message}")
    if not failures:
        log("rca-smoke: OK — planted slices ranked #1 in both cases")
    return 1 if failures else 0
