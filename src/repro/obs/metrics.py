"""Counters, gauges, and fixed-bucket histograms with Prometheus export.

A :class:`MetricsRegistry` holds named metrics, each of which owns one time
series per label combination.  The design is a deliberately small subset of
the Prometheus client model:

* :class:`Counter` — monotonically-increasing float (``inc``).
* :class:`Gauge` — last-written value (``set`` / ``inc`` / ``dec``).
* :class:`Histogram` — fixed upper-bound buckets with Prometheus ``le``
  semantics (a value equal to a bound lands in that bound's bucket), plus
  running sum and count.

Registries export to Prometheus text format (:meth:`MetricsRegistry.
to_prometheus`) and to JSON (:meth:`MetricsRegistry.to_dict`), and merge
(:meth:`MetricsRegistry.merge_dict`), which is how service workers ship
metric deltas back to the supervisor: the worker serialises its private
registry with ``to_dict`` and the supervisor folds it in — counters and
histogram buckets add, gauges take the incoming value.

Everything is plain Python; label values are stringified at record time so
a registry is always JSON-serialisable.
"""

from __future__ import annotations

import json
import pathlib
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds) — sub-millisecond planner phases up to
#: multi-second whole plans.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _labelkey(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Metric:
    """Base: one named metric owning one series per label combination."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, object] = {}

    def labelsets(self) -> List[Dict[str, str]]:
        """The label combinations this metric has seen, as dicts."""
        return [dict(key) for key in sorted(self.series)]


class Counter(Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _labelkey(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self.series.get(_labelkey(labels), 0.0))


class Gauge(Metric):
    """Last-written value (may go down)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.series[_labelkey(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _labelkey(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return float(self.series.get(_labelkey(labels), 0.0))


class Histogram(Metric):
    """Fixed-bucket histogram with Prometheus ``le`` (<=) semantics."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _labelkey(labels)
        state = self.series.get(key)
        if state is None:
            # counts has one extra slot for the implicit +Inf bucket.
            state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            self.series[key] = state
        state["counts"][bisect_left(self.buckets, value)] += 1
        state["sum"] += value
        state["count"] += 1

    def snapshot(self, **labels) -> Optional[Dict]:
        """``{counts, sum, count}`` for one label set (raw, non-cumulative)."""
        state = self.series.get(_labelkey(labels))
        if state is None:
            return None
        return {"counts": list(state["counts"]), "sum": state["sum"], "count": state["count"]}


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    ``enabled`` is advisory: instrumentation sites (and :func:`bump`) check
    it before recording, so the global registry can sit dormant at zero cost
    while privately-constructed registries (workers, tests) default to on.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # --------------------------------------------------------- registration

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # --------------------------------------------------------------- export

    def to_dict(self) -> Dict:
        """JSON-safe snapshot; :meth:`merge_dict` consumes this format."""
        out = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: Dict[str, object] = {
                "name": name,
                "type": metric.kind,
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {"labels": dict(key), **state}  # counts/sum/count
                    for key, state in sorted(metric.series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.series.items())
                ]
            out.append(entry)
        return {"metrics": out}

    def merge_dict(self, data: Dict) -> None:
        """Fold a :meth:`to_dict` snapshot in (counters/histograms add)."""
        for entry in data.get("metrics", []):
            name, kind, help = entry["name"], entry["type"], entry.get("help", "")
            if kind == "counter":
                metric = self.counter(name, help)
                for row in entry["series"]:
                    metric.inc(row["value"], **row["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, help)
                for row in entry["series"]:
                    metric.set(row["value"], **row["labels"])
            elif kind == "histogram":
                metric = self.histogram(name, help, buckets=entry["buckets"])
                if tuple(entry["buckets"]) != metric.buckets:
                    raise ValueError(f"bucket mismatch merging histogram {name!r}")
                for row in entry["series"]:
                    key = _labelkey(row["labels"])
                    state = metric.series.get(key)
                    if state is None:
                        state = {"counts": [0] * (len(metric.buckets) + 1),
                                 "sum": 0.0, "count": 0}
                        metric.series[key] = state
                    for i, n in enumerate(row["counts"]):
                        state["counts"][i] += n
                    state["sum"] += row["sum"]
                    state["count"] += row["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r}")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, state in sorted(metric.series.items()):
                    cumulative = 0
                    for bound, count in zip(metric.buckets, state["counts"]):
                        cumulative += count
                        bucket_key = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} {cumulative}"
                        )
                    cumulative += state["counts"][-1]
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(f"{name}_bucket{_format_labels(inf_key)} {cumulative}")
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_format_value(state['sum'])}"
                    )
                    lines.append(f"{name}_count{_format_labels(key)} {state['count']}")
            else:
                for key, value in sorted(metric.series.items()):
                    lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, path) -> None:
        """Write the registry to ``path`` (.json → JSON, else Prometheus)."""
        path = pathlib.Path(path)
        if path.suffix == ".json":
            path.write_text(json.dumps(self.to_dict(), indent=2))
        else:
            path.write_text(self.to_prometheus())


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text format into ``{name: [(labels, value), ...]}``.

    Supports the subset :meth:`MetricsRegistry.to_prometheus` emits — enough
    for ``repro.obs report`` to read back its own metric files.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_str = line.rpartition(" ")
        if not head:
            continue
        labels: Dict[str, str] = {}
        if "{" in head:
            name, _, rest = head.partition("{")
            body = rest.rstrip("}")
            for item in filter(None, body.split(",")):
                k, _, v = item.partition("=")
                labels[k.strip()] = v.strip().strip('"')
        else:
            name = head
        try:
            value = float(value_str)
        except ValueError:
            continue
        out.setdefault(name, []).append((labels, value))
    return out


#: Process-global registry, dormant until ``repro.obs.configure`` enables it.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process global; returns the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def bump(name: str, amount: float = 1.0, help: str = "", **labels) -> None:
    """One-line counter increment against the global registry (if enabled).

    The guard lives here so instrumentation sites stay a single call that
    costs one attribute check when metrics are off.
    """
    registry = _REGISTRY
    if registry.enabled:
        registry.counter(name, help).inc(amount, **labels)


def observe(
    name: str,
    value: float,
    help: str = "",
    buckets: Iterable[float] = DEFAULT_BUCKETS,
    **labels,
) -> None:
    """One-line histogram observation against the global registry.

    The histogram's buckets are fixed by its first registration; later
    calls reuse the existing metric, so passing the same ``buckets`` at
    every site keeps the declaration self-contained.  Like :func:`bump`,
    a disabled registry costs one attribute check.
    """
    registry = _REGISTRY
    if registry.enabled:
        registry.histogram(name, help, buckets).observe(value, **labels)
