"""Fault-injection front end: the chaos harness.

Usage::

    python -m repro.faults chaos                       # 200 jobs, seed 0
    python -m repro.faults chaos --quick --seed 0      # CI smoke (~24 jobs)
    python -m repro.faults chaos --jobs 500 --workers 8 --out chaos.json
    python -m repro.faults recovery --quick --seed 0   # crash/restart smoke
    python -m repro.faults recovery --jobs 400 --out recovery.json

``chaos`` builds a seeded randomized schedule of planning jobs laced with
worker crashes, hangs, corrupted pipe payloads, dropped/duplicated/
mislabelled results, malformed NaN requests, and deadline-degraded
anytime jobs, runs it through a live :mod:`repro.service` worker pool,
and asserts the robustness invariants (every job terminal, no deadlock,
no duplicate responses, the cache never stores or serves a non-``ok``
result, each fault category lands in its expected status).  Exit code 0
when every invariant holds, 1 on violation, 3 if the watchdog had to
shoot a deadlocked run.  The same ``--seed`` replays the same schedule —
the digest printed at the start is the fingerprint to quote in bug
reports.

``recovery`` (:mod:`repro.faults.recovery`) attacks the *process* rather
than the pool: journal-armed child services are kill -9'd mid-dispatch,
handed torn journals, raced against SIGKILLed cache shards, and crashed
mid portfolio race, then restarted; the gate is the durability contract
(every admitted job terminal exactly once, poison jobs quarantined,
torn tails repaired).  ``recovery-child`` is the internal child-process
entry point the harness spawns — one journaled service lifetime.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

from . import FaultPlan
from .chaos import ChaosInvariantError, run_chaos

#: Job count for ``--quick`` (CI smoke): enough draws that every category
#: appears with reasonable probability, small enough to finish in seconds.
QUICK_JOBS = 24


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.faults", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    chaos = sub.add_parser(
        "chaos", help="run a randomized fault schedule against a live pool"
    )
    chaos.add_argument("--jobs", type=int, default=200,
                       help="schedule length (default %(default)s)")
    chaos.add_argument("--quick", action="store_true",
                       help=f"CI smoke mode: {QUICK_JOBS} jobs")
    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule seed; identical seeds replay "
                            "identical schedules (default %(default)s)")
    chaos.add_argument("--workers", type=int, default=4,
                       help="worker processes (default %(default)s)")
    chaos.add_argument("--robot", default="mobile2d")
    chaos.add_argument("--obstacles", type=int, default=8)
    chaos.add_argument("--samples", type=int, default=60,
                       help="sampling budget of the healthy jobs")
    chaos.add_argument("--fault-plan", default=None, metavar="SPEC",
                       help="override the injector plan layered on top of "
                            "the scheduled faults (see repro.faults specs); "
                            "status-changing kinds may break the per-"
                            "category expectations")
    chaos.add_argument("--watchdog", type=float, default=None, metavar="S",
                       help="deadlock watchdog budget (default: "
                            "max(120, 2*jobs) seconds)")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="write the chaos report JSON here (includes "
                            "per-job records for RCA drill-downs)")
    chaos.add_argument("--rca", action="store_true",
                       help="after a clean run, print the repro.obs.rca "
                            "drill-down attributing fault-armed wall-time "
                            "tail latency vs the clean jobs")

    recovery = sub.add_parser(
        "recovery",
        help="crash/restart durability harness: kill -9 mid-dispatch, "
             "torn journals, shard death, poison-job quarantine",
    )
    recovery.add_argument("--jobs", type=int, default=200,
                          help="admitted-job budget across scenarios "
                               "(default %(default)s)")
    recovery.add_argument("--quick", action="store_true",
                          help=f"CI smoke mode: {QUICK_JOBS} jobs")
    recovery.add_argument("--seed", type=int, default=0,
                          help="schedule seed; identical seeds replay "
                               "identical crash points (default %(default)s)")
    recovery.add_argument("--workers", type=int, default=0,
                          help="planner workers per child process "
                               "(default %(default)s = inline)")
    recovery.add_argument("--robot", default="mobile2d")
    recovery.add_argument("--obstacles", type=int, default=6)
    recovery.add_argument("--samples", type=int, default=60)
    recovery.add_argument("--keep", action="store_true",
                          help="keep the journal work directory even on "
                               "a green run (always kept on violations)")
    recovery.add_argument("--out", default=None, metavar="PATH",
                          help="write the recovery report JSON here")

    child = sub.add_parser(
        "recovery-child",
        help="internal: one journaled service lifetime (spawned by "
             "'recovery'; crashes by design when a fault plan says so)",
    )
    from .recovery import add_child_arguments

    add_child_arguments(child)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "recovery-child":
        from .recovery import run_child

        return run_child(args)
    if args.command == "recovery":
        from .recovery import run_recovery

        report = run_recovery(
            seed=args.seed,
            jobs=QUICK_JOBS if args.quick else args.jobs,
            workers=args.workers,
            robot=args.robot,
            obstacles=args.obstacles,
            samples=args.samples,
            keep=args.keep,
        )
        payload = report.to_dict()
        print(json.dumps(payload, indent=2))
        if args.out is not None:
            pathlib.Path(args.out).write_text(json.dumps(payload, indent=2))
            print(f"report written to {args.out}")
        for violation in report.violations:
            print(f"RECOVERY GATE VIOLATION: {violation}", file=sys.stderr)
        if report.violations and report.root:
            print(f"recovery: journals kept for inspection in {report.root}",
                  file=sys.stderr)
        return 1 if report.violations else 0
    jobs = QUICK_JOBS if args.quick else args.jobs
    fault_plan = None
    if args.fault_plan:
        fault_plan = FaultPlan.from_spec(args.fault_plan, seed=max(1, args.seed))
    try:
        report = run_chaos(
            seed=args.seed,
            jobs=jobs,
            workers=args.workers,
            robot=args.robot,
            obstacles=args.obstacles,
            samples=args.samples,
            fault_plan=fault_plan,
            watchdog_s=args.watchdog,
        )
    except ChaosInvariantError as exc:
        print(f"chaos: FAILED\n{exc}", file=sys.stderr)
        return 1
    payload = report.to_dict()
    # stdout gets the compact summary; the --out file keeps the per-job
    # records so it can feed ``python -m repro.obs rca`` drill-downs.
    compact = {k: v for k, v in payload.items() if k != "records"}
    print(json.dumps(compact, indent=2))
    if args.out is not None:
        pathlib.Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"report written to {args.out}")
    if args.rca:
        from repro.obs.rca import analyze, records_from_chaos, split_records

        records = records_from_chaos(payload)
        try:
            baseline, candidate = split_records(records, "fault=clean")
        except ValueError as exc:
            print(f"rca: skipped ({exc})", file=sys.stderr)
        else:
            result = analyze(baseline, candidate, measure="wall_seconds",
                             metric="p95")
            print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
