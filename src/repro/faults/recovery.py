"""Crash-recovery chaos: kill -9, torn journals, shard death, poison jobs.

Where :mod:`repro.faults.chaos` attacks the *worker pool* inside one
process, this harness attacks the *process itself*.  Every scenario runs
a journal-armed :class:`repro.service.PlanningService` in a child
process (``python -m repro.faults recovery-child``), kills it at a
seeded point in the write-ahead stream — or tears the journal's final
record, or SIGKILLs a cache shard under a replicated tier — restarts
it, and audits the journal left behind for the durability contract:

* **exactly-once** — every admitted job carries exactly one terminal
  record (``done``/``cancel``) in trusted history, and a final scan
  leaves nothing pending: accepted work survives any single process
  death, and nothing is settled twice.
* **no resurrection** — settled jobs (including ``degraded`` and
  ``cancelled``) are never replayed; only interrupted ones are.
* **quarantine** — a job that keeps killing the process is dead-lettered
  ``"poison"`` after :data:`~repro.service.journal
  .DEFAULT_QUARANTINE_THRESHOLD` interrupted dispatches, not replayed
  into a crash loop.
* **repair** — a torn tail is truncated on recovery, so post-recovery
  records land on trusted (scannable) history.

Scenarios:

``kill9``
    SIGKILL (via the ``journal.append:crash`` fault, ``os._exit`` mid
    append) lands exactly on a *dispatch* record: the admit is durable,
    the dispatch is not.  The restarted process must replay every
    admitted-but-unsettled job.
``torn``
    The ``journal.append:corrupt`` fault writes a half-line *terminal*
    record mid-batch — the classic torn final write.  Recovery must
    report ``torn``, truncate the damaged suffix, and idempotently
    re-settle the jobs whose ``done`` records fell past the tear.
``quarantine``
    The same job crashes the process at its terminal append twice in a
    row; the third process must quarantine its request hash with a
    terminal ``"poison"`` instead of replaying it a third time.
``shard_death``
    A replication-2 shard tier is populated, one shard is SIGKILLed,
    and a fresh process re-requests every key: each one must be served
    as a (replica-failed-over) cache hit, never re-planned.
``restart_race``
    Portfolio-racing jobs (``portfolio=["auto"]``) are crashed after
    some races settled; the restarted process replays the unsettled
    races to terminal without resurrecting the settled ones.

The parent/child split is real process death, not simulation: children
are ``sys.executable -m repro.faults recovery-child`` subprocesses
(inheriting ``PYTHONPATH``), the crash is ``os._exit(87)`` with no
cleanup, and the only shared state is the journal directory — exactly
the contract a production restart has.  Children journal with
``fsync="always"`` so the append arithmetic in the fault specs maps
one-to-one onto durable records.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.journal import (
    DEFAULT_QUARANTINE_THRESHOLD,
    TERMINAL_KINDS,
    replay_state,
    scan_journal,
)

__all__ = [
    "RecoveryInvariantError",
    "RecoveryReport",
    "run_recovery",
    "schedule_specs",
    "verify_journal",
]

RECOVERY_SCHEMA = 1
RECOVERY_EMITTER = "repro.faults.recovery"

#: Exit status of an injected ``crash`` (``os._exit`` in repro.faults) —
#: the scenarios assert the child died *this* way, not some other way.
CRASH_EXIT_CODE = 87

#: Watchdog for one child run: generous, because a child that outlives it
#: is deadlocked (the scenarios themselves finish in seconds).
_CHILD_TIMEOUT_S = 600.0

_ANNOUNCE_TIMEOUT_S = 30.0


class RecoveryInvariantError(AssertionError):
    """A durability invariant did not survive the crash schedule."""


@dataclass
class RecoveryReport:
    """Everything one harness run learned, JSON-ready via :meth:`to_dict`."""

    seed: int
    jobs: int
    workers: int
    root: str
    scenarios: Dict[str, Dict] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    admitted: int = 0
    settled: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": RECOVERY_SCHEMA,
            "emitter": RECOVERY_EMITTER,
            "seed": self.seed,
            "jobs": self.jobs,
            "workers": self.workers,
            "root": self.root,
            "green": not self.violations,
            "admitted": self.admitted,
            "settled": self.settled,
            "wall_seconds": round(self.wall_seconds, 3),
            "violations": list(self.violations),
            "scenarios": self.scenarios,
        }


# --------------------------------------------------------------- schedule


def schedule_specs(
    seed: int,
    start: int,
    count: int,
    robot: str = "mobile2d",
    obstacles: int = 6,
    samples: int = 60,
    portfolio: bool = False,
) -> List[Dict]:
    """Deterministic wire specs for job indices ``[start, start+count)``.

    Keyed by absolute index (not by run), so a restarted process given
    the same index range regenerates byte-identical specs — and thereby
    identical request hashes / cache keys, which is what the dedup and
    shard-failover scenarios rely on.
    """
    specs: List[Dict] = []
    for index in range(start, start + count):
        spec: Dict[str, object] = {
            "robot": robot,
            "obstacles": obstacles,
            "samples": samples,
            "seed": (seed * 100_003 + index * 7_919) % (2 ** 31 - 1),
        }
        if portfolio:
            spec["portfolio"] = ["auto"]
        specs.append(spec)
    return specs


# ----------------------------------------------------------------- audit


def verify_journal(
    directory,
    quarantine_threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
) -> Tuple[List[str], Dict[str, object]]:
    """Audit a journal directory for the exactly-once contract.

    Returns ``(violations, summary)``.  The audit is over *trusted*
    history (what :func:`scan_journal` can read back), which after a
    completed recovery must be tear-free, settle every admit exactly
    once, and fold to an empty replay work list.
    """
    records, torn = scan_journal(directory)
    violations: List[str] = []
    if torn:
        violations.append("journal still torn after recovery ran")
    admits: Dict[str, int] = {}
    terminals: Dict[str, int] = {}
    statuses: Dict[str, int] = {}
    for record in records:
        rid = str(record.get("request_id", ""))
        kind = record.get("kind")
        if kind == "admit":
            admits[rid] = admits.get(rid, 0) + 1
        elif kind in TERMINAL_KINDS:
            terminals[rid] = terminals.get(rid, 0) + 1
            status = str(record.get("status", ""))
            statuses[status] = statuses.get(status, 0) + 1
    for rid, count in admits.items():
        if count > 1:
            violations.append(f"job {rid} admitted {count} times")
        settled = terminals.get(rid, 0)
        if settled == 0:
            violations.append(f"admitted job {rid} never reached a terminal "
                              f"record")
        elif settled > 1:
            violations.append(f"admitted job {rid} settled {settled} times")
    for rid in terminals:
        if rid not in admits:
            violations.append(f"terminal record for never-admitted job {rid}")
    state = replay_state(
        records, torn=torn, quarantine_threshold=quarantine_threshold
    )
    if state.pending:
        violations.append(
            f"{len(state.pending)} job(s) still pending after recovery"
        )
    if state.quarantined:
        violations.append(
            f"{len(state.quarantined)} quarantined job(s) never settled"
        )
    summary = {
        "records": len(records),
        "admits": len(admits),
        "terminals": sum(terminals.values()),
        "statuses": statuses,
        "torn": torn,
        "clean": state.clean,
    }
    return violations, summary


# ------------------------------------------------------------ child runner


def add_child_arguments(parser) -> None:
    """Options for the ``recovery-child`` subcommand (one service run)."""
    parser.add_argument("--journal-dir", required=True)
    parser.add_argument("--tag", default="a",
                        help="request-id prefix distinguishing runs that "
                             "share a journal (rids stay unique, specs — "
                             "index-keyed — stay identical)")
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--robot", default="mobile2d")
    parser.add_argument("--obstacles", type=int, default=6)
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument("--portfolio", action="store_true",
                        help="submit portfolio=['auto'] racing jobs")
    parser.add_argument("--fault", default=None, metavar="SPEC",
                        help="repro.faults plan armed before the run "
                             "(journal.append crash/corrupt arithmetic)")
    parser.add_argument("--fault-seed", type=int, default=1)
    parser.add_argument("--fsync", default="always",
                        choices=("always", "batch", "off"))
    parser.add_argument("--shards", default=None, metavar="EP[,EP...]")
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument("--quarantine-threshold", type=int,
                        default=DEFAULT_QUARANTINE_THRESHOLD)


def run_child(args) -> int:
    """One journaled service lifetime: recover, plan, shut down clean.

    Prints ``RECOVERY {json}`` after replay and ``RESULT {json}`` after a
    clean shutdown — the parent's only window into a process that may be
    shot at any append.  A ``crash`` fault exits ``os._exit(87)`` with
    neither line flushed past the point of death, exactly like kill -9.
    """
    from collections import Counter

    from repro.faults import FaultPlan, install_plan
    from repro.net.wire import request_from_wire
    from repro.service import PlanningService
    from repro.service.journal import JobJournal

    if args.fault:
        install_plan(
            FaultPlan.from_spec(args.fault, seed=max(1, args.fault_seed)),
            scope="recovery-child",
        )
    cache = None
    if args.shards:
        from repro.net.shard import ShardedPlanCache

        endpoints = [
            ep.strip() for ep in args.shards.split(",") if ep.strip()
        ]
        cache = ShardedPlanCache(endpoints, replication=args.replication)
    journal = JobJournal(
        args.journal_dir,
        fsync=args.fsync,
        quarantine_threshold=args.quarantine_threshold,
    )
    service = PlanningService(
        num_workers=args.workers, cache=cache, journal=journal
    )
    recovery = service.recover()
    replayed = recovery.pop("responses", [])
    recovery["replayed_statuses"] = dict(
        Counter(r.status for r in replayed)
    )
    print("RECOVERY " + json.dumps(recovery), flush=True)
    specs = schedule_specs(
        args.seed, args.start, args.jobs,
        robot=args.robot, obstacles=args.obstacles, samples=args.samples,
        portfolio=args.portfolio,
    )
    requests = [
        request_from_wire(
            {"spec": spec}, request_id=f"rec-{args.tag}-{index:04d}"
        )
        for index, spec in enumerate(specs, start=args.start)
    ]
    responses = service.run_batch(requests) if requests else []
    result = {
        "jobs": len(requests),
        "statuses": dict(Counter(r.status for r in responses)),
        "cache": service.cache.stats(),
    }
    service.close()
    journal.mark_clean_shutdown()
    journal.close()
    print("RESULT " + json.dumps(result), flush=True)
    return 0


# -------------------------------------------------------------- orchestration


def _run_child_process(
    directory: str,
    *,
    tag: str,
    start: int,
    jobs: int,
    seed: int,
    workers: int,
    robot: str,
    obstacles: int,
    samples: int,
    fault: Optional[str] = None,
    portfolio: bool = False,
    shards: Optional[Sequence[str]] = None,
    replication: int = 1,
) -> Dict[str, object]:
    cmd = [
        sys.executable, "-m", "repro.faults", "recovery-child",
        "--journal-dir", directory, "--tag", tag,
        "--start", str(start), "--jobs", str(jobs),
        "--seed", str(seed), "--workers", str(workers),
        "--robot", robot, "--obstacles", str(obstacles),
        "--samples", str(samples),
    ]
    if portfolio:
        cmd.append("--portfolio")
    if fault:
        cmd += ["--fault", fault, "--fault-seed", str(max(1, seed))]
    if shards:
        cmd += ["--shards", ",".join(shards),
                "--replication", str(replication)]
    info: Dict[str, object] = {
        "tag": tag, "rc": None, "recovery": None, "result": None,
    }
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, timeout=_CHILD_TIMEOUT_S,
        )
    except subprocess.TimeoutExpired:
        info["rc"] = -1
        info["stderr"] = f"watchdog: child exceeded {_CHILD_TIMEOUT_S:g}s"
        return info
    info["rc"] = proc.returncode
    for line in proc.stdout.splitlines():
        if line.startswith("RECOVERY "):
            info["recovery"] = json.loads(line[len("RECOVERY "):])
        elif line.startswith("RESULT "):
            info["result"] = json.loads(line[len("RESULT "):])
    tail = proc.stderr.strip()[-400:]
    if tail:
        info["stderr"] = tail
    return info


def _expect_rc(info: Dict, wanted: int, name: str, what: str,
               violations: List[str]) -> bool:
    if info["rc"] == wanted:
        return True
    detail = str(info.get("stderr") or "").strip()
    violations.append(
        f"{name}: {what} run exited {info['rc']} (wanted {wanted})"
        + (f" — {detail}" if detail else "")
    )
    return False


class _ShardProc:
    """One SIGKILL-able cache-shard subprocess (announce-line discovery)."""

    def __init__(self) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net", "shard", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        self.endpoint: Optional[str] = None

    def await_announce(self) -> str:
        deadline = time.monotonic() + _ANNOUNCE_TIMEOUT_S
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"shard exited before announcing (rc={self.proc.poll()})"
                )
            if line.startswith("SHARD "):
                self.endpoint = line.split()[1].strip()
                return self.endpoint
        raise RuntimeError("shard did not announce in time")

    def kill(self) -> None:
        """SIGKILL — no drain, no goodbye; the failover scenario's hammer."""
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.kill()


def _commit(report: RecoveryReport, name: str, scenario: Dict,
            violations: List[str], audit: Dict) -> None:
    scenario["audit"] = audit
    scenario["green"] = not violations
    report.scenarios[name] = scenario
    report.violations.extend(violations)
    report.admitted += int(audit.get("admits", 0))
    report.settled += int(audit.get("terminals", 0))


# Append arithmetic used by the fault specs below (fsync="always", fresh
# journal, n jobs, distinct cache keys, no replay): append #1 is the
# startup marker, job j (1-based) admits at #2j and dispatches at #2j+1,
# terminal records land at #(1+2n+1) .. #(1+2n+n), clean_shutdown last.
# ``after=K`` lets K appends land and fires on append K+1.


def _scenario_kill9(report: RecoveryReport, root: str, n: int,
                    common: Dict) -> None:
    name = "kill9"
    directory = os.path.join(root, name)
    j0 = max(1, n // 2)
    # Crash ON the dispatch append of job j0: its admit is durable, its
    # dispatch is not, jobs 1..j0-1 are admitted+dispatched — all j0 are
    # unsettled and must be replayed by the next process.
    crash = _run_child_process(
        directory, tag="a", start=0, jobs=n,
        fault=f"journal.append:crash:after={2 * j0}", **common,
    )
    again = _run_child_process(
        directory, tag="b", start=j0, jobs=n - j0, **common,
    )
    violations: List[str] = []
    _expect_rc(crash, CRASH_EXIT_CODE, name, "crash", violations)
    if _expect_rc(again, 0, name, "restart", violations):
        recovered = (again.get("recovery") or {})
        if recovered.get("replayed") != j0:
            violations.append(
                f"{name}: recovery replayed {recovered.get('replayed')} "
                f"job(s), wanted {j0}"
            )
    audit_violations, audit = verify_journal(directory)
    violations.extend(f"{name}: {v}" for v in audit_violations)
    _commit(report, name, {"jobs": n, "runs": [crash, again]},
            violations, audit)


def _scenario_torn(report: RecoveryReport, root: str, n: int,
                   common: Dict) -> None:
    name = "torn"
    directory = os.path.join(root, name)
    settled = n // 2
    # Corrupt (half-write) the terminal record of job settled+1: the
    # process survives and keeps appending, but everything past the tear
    # is untrusted — recovery must report torn, repair, and re-settle
    # jobs settled+1..n.
    torn_run = _run_child_process(
        directory, tag="a", start=0, jobs=n,
        fault=f"journal.append:corrupt:max=1:after={1 + 2 * n + settled}",
        **common,
    )
    again = _run_child_process(directory, tag="b", start=0, jobs=0, **common)
    violations: List[str] = []
    _expect_rc(torn_run, 0, name, "torn-write", violations)
    if _expect_rc(again, 0, name, "restart", violations):
        recovered = (again.get("recovery") or {})
        if not recovered.get("torn"):
            violations.append(f"{name}: recovery did not report the tear")
        if recovered.get("replayed") != n - settled:
            violations.append(
                f"{name}: recovery replayed {recovered.get('replayed')} "
                f"job(s), wanted {n - settled}"
            )
    audit_violations, audit = verify_journal(directory)
    violations.extend(f"{name}: {v}" for v in audit_violations)
    _commit(report, name, {"jobs": n, "runs": [torn_run, again]},
            violations, audit)


def _scenario_quarantine(report: RecoveryReport, root: str,
                         common: Dict) -> None:
    name = "quarantine"
    directory = os.path.join(root, name)
    # One job, killed at its terminal append twice: first run appends
    # startup/admit/dispatch then dies on the done (#4 → after=3); the
    # replaying run appends startup/dispatch and dies on the done again
    # (#3 → after=2).  Two interrupted dispatches cross the threshold, so
    # the third process must dead-letter it "poison", not replay it.
    first = _run_child_process(
        directory, tag="qa", start=0, jobs=1,
        fault="journal.append:crash:after=3", **common,
    )
    second = _run_child_process(
        directory, tag="qb", start=0, jobs=0,
        fault="journal.append:crash:after=2", **common,
    )
    third = _run_child_process(directory, tag="qc", start=0, jobs=0, **common)
    violations: List[str] = []
    _expect_rc(first, CRASH_EXIT_CODE, name, "first crash", violations)
    _expect_rc(second, CRASH_EXIT_CODE, name, "second crash", violations)
    if _expect_rc(third, 0, name, "restart", violations):
        recovered = (third.get("recovery") or {})
        if recovered.get("quarantined") != 1:
            violations.append(
                f"{name}: recovery quarantined "
                f"{recovered.get('quarantined')} job(s), wanted 1"
            )
        if recovered.get("replayed"):
            violations.append(
                f"{name}: a poison job was replayed instead of quarantined"
            )
    audit_violations, audit = verify_journal(directory)
    violations.extend(f"{name}: {v}" for v in audit_violations)
    if audit.get("statuses", {}).get("poison") != 1:
        violations.append(
            f"{name}: expected exactly one poison terminal, "
            f"saw {audit.get('statuses')}"
        )
    _commit(report, name, {"jobs": 1, "runs": [first, second, third]},
            violations, audit)


def _scenario_shard_death(report: RecoveryReport, root: str, n: int,
                          common: Dict) -> None:
    name = "shard_death"
    directory = os.path.join(root, name)
    shards = [_ShardProc(), _ShardProc()]
    violations: List[str] = []
    first: Dict = {}
    second: Dict = {}
    expected_failovers = 0
    try:
        endpoints = [shard.await_announce() for shard in shards]
        first = _run_child_process(
            directory, tag="a", start=0, jobs=n,
            shards=endpoints, replication=2, **common,
        )
        shards[0].kill()
        second = _run_child_process(
            directory, tag="b", start=0, jobs=n,
            shards=endpoints, replication=2, **common,
        )
        _expect_rc(first, 0, name, "populate", violations)
        if _expect_rc(second, 0, name, "post-death", violations):
            stats = ((second.get("result") or {}).get("cache") or {})
            hits = int(stats.get("hits", 0))
            if hits != n:
                violations.append(
                    f"{name}: only {hits}/{n} re-requests were cache hits "
                    f"after shard death — replication failed to cover"
                )
            # The ring is deterministic, so the parent can compute how
            # many keys had their *primary* on the dead shard; each one
            # must have been served by a replica failover.
            from repro.net.shard import ShardedPlanCache
            from repro.net.wire import request_from_wire

            ring = ShardedPlanCache(endpoints, replication=2)
            specs = schedule_specs(
                common["seed"], 0, n, robot=common["robot"],
                obstacles=common["obstacles"], samples=common["samples"],
            )
            keys = [
                request_from_wire({"spec": spec}, request_id="probe")
                .cache_key()
                for spec in specs
            ]
            expected_failovers = sum(
                1 for key in keys
                if ring.replicas_for(key)[0] == endpoints[0]
            )
            failovers = int(stats.get("failovers", 0))
            if failovers < expected_failovers:
                violations.append(
                    f"{name}: {failovers} replica failovers, wanted >= "
                    f"{expected_failovers} (keys whose primary died)"
                )
    finally:
        for shard in shards:
            shard.stop()
    audit_violations, audit = verify_journal(directory)
    violations.extend(f"{name}: {v}" for v in audit_violations)
    _commit(
        report, name,
        {"jobs": 2 * n, "runs": [first, second],
         "expected_failovers": expected_failovers},
        violations, audit,
    )


def _scenario_restart_race(report: RecoveryReport, root: str, n: int,
                           common: Dict) -> None:
    name = "restart_race"
    directory = os.path.join(root, name)
    settled = max(1, n // 2)
    # Portfolio races journal exactly like plain jobs (admit + dispatch,
    # then one terminal for the synthesised parent response); crash on
    # the terminal append of race settled+1, so some races are settled
    # and the rest must be re-raced by the restarted process.
    crash = _run_child_process(
        directory, tag="a", start=0, jobs=n, portfolio=True,
        fault=f"journal.append:crash:after={1 + 2 * n + settled}", **common,
    )
    again = _run_child_process(directory, tag="b", start=0, jobs=0, **common)
    violations: List[str] = []
    _expect_rc(crash, CRASH_EXIT_CODE, name, "mid-race crash", violations)
    if _expect_rc(again, 0, name, "restart", violations):
        recovered = (again.get("recovery") or {})
        if recovered.get("replayed") != n - settled:
            violations.append(
                f"{name}: recovery re-raced {recovered.get('replayed')} "
                f"job(s), wanted {n - settled}"
            )
    audit_violations, audit = verify_journal(directory)
    violations.extend(f"{name}: {v}" for v in audit_violations)
    _commit(report, name, {"jobs": n, "runs": [crash, again]},
            violations, audit)


def run_recovery(
    seed: int = 0,
    jobs: int = 200,
    workers: int = 0,
    robot: str = "mobile2d",
    obstacles: int = 6,
    samples: int = 60,
    keep: bool = False,
) -> RecoveryReport:
    """Run every crash-recovery scenario; raise on invariant violations.

    ``jobs`` is the admitted-job budget spread across scenarios (each
    non-trivial scenario gets ``max(4, jobs // 4)``; the shard scenario
    admits twice that across its two lifetimes).  On a green run the
    work directory is deleted unless ``keep``; on a violation it is kept
    so the journals can be inspected (the report names it).
    """
    start_time = time.monotonic()
    root = tempfile.mkdtemp(prefix="repro-recovery-")
    per = max(4, jobs // 4)
    report = RecoveryReport(
        seed=seed, jobs=jobs, workers=workers, root=root
    )
    common = {
        "seed": seed, "workers": workers, "robot": robot,
        "obstacles": obstacles, "samples": samples,
    }
    try:
        _scenario_kill9(report, root, per, common)
        _scenario_torn(report, root, per, common)
        _scenario_quarantine(report, root, common)
        _scenario_shard_death(report, root, per, common)
        _scenario_restart_race(report, root, max(4, per // 2), common)
    finally:
        report.wall_seconds = time.monotonic() - start_time
        if not report.violations and not keep:
            shutil.rmtree(root, ignore_errors=True)
            report.root = ""
    return report
