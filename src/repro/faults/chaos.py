"""The chaos harness: randomized fault schedules against a live pool.

``python -m repro.faults chaos`` builds a seeded, randomized schedule of
planning jobs — healthy ones interleaved with hangs, hard crashes,
worker-poisoning repeat crashes, corrupted pipe payloads, dropped and
duplicated results, malformed NaN requests, and deadline-degraded anytime
jobs — runs it through a real :class:`~repro.service.runner.PlanningService`
worker pool, and asserts the robustness invariants the service layer
promises:

1. every submitted job reaches a terminal status (1:1, original order);
2. the supervisor never deadlocks (a watchdog hard-exits if it does);
3. no duplicate responses (telemetry records exactly one row per request);
4. the cache never serves a non-``"ok"`` result, and never stores one;
5. each fault category lands in its expected terminal status.

Every fault in the schedule is *request-driven* (carried by the request's
``fault`` hook or its planner config), so the terminal status of every job
is a pure function of the seed — the same seed replays the same schedule
digest and the same statuses, which is what makes a chaos failure
debuggable.  An optional :class:`~repro.faults.FaultPlan` layers
probabilistic injector faults on top for sites the hooks cannot reach.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.moped import config_for_variant
from ..core.world import PlanningTask
from ..service.pool import PoolConfig
from ..service.request import PlanRequest, TERMINAL_STATUSES
from . import FaultInjector, FaultPlan, set_injector

#: (category, weight, expected terminal statuses).  Weights are relative;
#: expected statuses are exact — the schedule is constructed so each
#: category's outcome is deterministic (see the fault semantics in
#: :mod:`repro.service.worker` / :mod:`repro.service.pool`).
CATEGORIES: Tuple[Tuple[str, float, Tuple[str, ...]], ...] = (
    ("healthy", 0.40, ("ok",)),
    ("slow", 0.06, ("ok",)),                 # worker sleeps, then plans
    ("hang", 0.07, ("timeout",)),            # sleeps past its 0.4 s budget
    ("crash", 0.07, ("poison",)),            # crashes every worker -> quarantined
    ("error", 0.06, ("error",)),             # raises every attempt -> retries exhausted
    ("flaky", 0.07, ("ok",)),                # crashes once, retry succeeds
    ("corrupt", 0.06, ("poison",)),          # garbage pipe payload every attempt
    ("duplicate", 0.05, ("ok",)),            # result sent twice; second dropped
    ("wrong_id", 0.04, ("timeout",)),        # mislabelled result dropped -> reaped
    ("drop", 0.04, ("timeout",)),            # result never sent -> reaped
    ("crash_after_send", 0.05, ("ok",)),     # dies after delivering the result
    ("malformed", 0.05, ("invalid",)),       # NaN start config, bypasses __init__
    ("degraded", 0.08, ("degraded",)),       # tiny deadline -> best-so-far
    ("connect", 0.05, ("ok",)),              # bidirectional RRT-Connect mode
    # Connect-mode jobs under injector faults at the greedy-connect site
    # plus a wall deadline: the invariant is *termination* — the chunked
    # connect loop polls the budget, so a perturbed (slowed) extend run
    # ends "ok" if it bridged in time and "degraded" (deadline) if not,
    # never hung.
    ("connect_faulted", 0.05, ("ok", "degraded")),
)

#: Wall budget for jobs whose *outcome* is a supervisor-side timeout.
_REAP_TIMEOUT_S = 0.4
#: Sampling budget for the deadline-degraded jobs: big enough that the
#: deadline always expires long before the budget would complete.
_DEGRADED_SAMPLES = 50_000
_DEGRADED_DEADLINE_S = 0.05
#: Wall deadline on the faulted-connect jobs: generous enough that clean
#: runs bridge in time, tight enough that a slowed one degrades promptly.
_CONNECT_DEADLINE_S = 0.25


class ChaosInvariantError(AssertionError):
    """A robustness invariant was violated during a chaos run."""


@dataclass
class ChaosJob:
    """One scheduled request plus the statuses it is allowed to end in."""

    category: str
    request: PlanRequest
    expected: Tuple[str, ...]


#: Version stamp on written chaos reports so downstream consumers
#: (``repro.obs.rca``) can reject or upgrade mismatched dumps.
CHAOS_SCHEMA = 1
CHAOS_EMITTER = "repro.faults.chaos"


@dataclass
class ChaosReport:
    """Outcome of one chaos run (plain data, JSON-ready)."""

    seed: int
    jobs: int
    digest: str
    elapsed_s: float
    statuses: Dict[str, int] = field(default_factory=dict)
    categories: Dict[str, int] = field(default_factory=dict)
    pool: Dict[str, object] = field(default_factory=dict)
    cache: Dict[str, object] = field(default_factory=dict)
    injector_fires: Dict[str, int] = field(default_factory=dict)
    #: Per-job telemetry rows tagged with their schedule category, so
    #: fault-induced tail latency can be attributed to its fault site
    #: (``python -m repro.obs rca chaos.json --split fault=clean``).
    records: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CHAOS_SCHEMA,
            "emitter": CHAOS_EMITTER,
            "seed": self.seed,
            "jobs": self.jobs,
            "digest": self.digest,
            "elapsed_s": round(self.elapsed_s, 3),
            "statuses": dict(self.statuses),
            "categories": dict(self.categories),
            "pool": self.pool,
            "cache": self.cache,
            "injector_fires": dict(self.injector_fires),
            "records": [dict(r) for r in self.records],
        }


def _bypass_request(task: PlanningTask, **fields) -> PlanRequest:
    """Build a PlanRequest WITHOUT running validation (hostile input sim)."""
    request = object.__new__(PlanRequest)
    defaults = dict(task=task, lanes=1, smooth=False, timeout_s=None,
                    request_id="", fault=None, trace=False)
    defaults.update(fields)
    for name, value in defaults.items():
        object.__setattr__(request, name, value)
    return request


def _malformed_task(task: PlanningTask) -> PlanningTask:
    """Clone ``task`` with a NaN start, bypassing PlanningTask validation."""
    bad_start = np.array(task.start, dtype=float)
    bad_start[0] = float("nan")
    clone = object.__new__(PlanningTask)
    object.__setattr__(clone, "robot_name", task.robot_name)
    object.__setattr__(clone, "environment", task.environment)
    object.__setattr__(clone, "start", bad_start)
    object.__setattr__(clone, "goal", np.array(task.goal, dtype=float))
    object.__setattr__(clone, "task_id", task.task_id)
    return clone


def build_schedule(
    seed: int,
    jobs: int,
    robot: str = "mobile2d",
    obstacles: int = 8,
    samples: int = 60,
    flag_dir: Optional[str] = None,
) -> List[ChaosJob]:
    """Seeded randomized schedule of ``jobs`` chaos jobs.

    ``flag_dir`` hosts the one-shot flag files of ``flaky`` jobs; pass the
    same directory to every build of a schedule you intend to *run* (the
    files are created here so the first attempt finds them).
    """
    from repro.workloads import random_task

    rng = random.Random(seed)
    names = [c[0] for c in CATEGORIES]
    weights = [c[1] for c in CATEGORIES]
    expected = {c[0]: c[2] for c in CATEGORIES}
    schedule: List[ChaosJob] = []
    for i in range(jobs):
        category = rng.choices(names, weights=weights, k=1)[0]
        task_seed, gen_id = seed * 100_003 + i, i
        if category == "degraded":
            # Every degraded job in a schedule shares one task (and hence
            # one cache key): the duplicates coalesce, so the run also
            # exercises the follower-echo path and the rule that a
            # degraded result is never cached or served as a hit.  The
            # generation id is pinned too (random_task mixes it into the
            # start/goal RNG).
            task_seed, gen_id = seed * 100_003 + jobs, jobs
        task = random_task(robot, obstacles, seed=task_seed, task_id=gen_id)
        config = config_for_variant("full", max_samples=samples,
                                    seed=task_seed, goal_bias=0.1)
        request_id = f"chaos-{i:04d}-{category}"
        fault: Optional[str] = None
        timeout_s: Optional[float] = None
        if category == "slow":
            fault = "slow:0.03"
        elif category == "hang":
            fault, timeout_s = "hang", _REAP_TIMEOUT_S
        elif category == "crash":
            fault = "crash"
        elif category == "error":
            fault = "error"
        elif category == "flaky":
            assert flag_dir is not None, "flaky jobs need flag_dir"
            flag = os.path.join(flag_dir, f"flaky-{seed}-{i}.flag")
            with open(flag, "w"):
                pass
            fault = f"flaky:{flag}"
        elif category in ("corrupt", "duplicate", "wrong_id", "drop",
                          "crash_after_send"):
            fault = category
            if category in ("wrong_id", "drop"):
                timeout_s = 2 * _REAP_TIMEOUT_S
        elif category == "degraded":
            config = config_for_variant(
                "full", max_samples=_DEGRADED_SAMPLES, seed=task_seed,
                goal_bias=0.1, deadline_s=_DEGRADED_DEADLINE_S,
            )
        elif category == "connect":
            config = config_for_variant(
                "full", max_samples=samples, seed=task_seed,
                goal_bias=0.1, mode="connect",
            )
        elif category == "connect_faulted":
            config = config_for_variant(
                "full", max_samples=_DEGRADED_SAMPLES, seed=task_seed,
                goal_bias=0.1, mode="connect", deadline_s=_CONNECT_DEADLINE_S,
            )
        if category == "malformed":
            request = _bypass_request(
                _malformed_task(task), config=config, request_id=request_id
            )
        else:
            request = PlanRequest(
                task=task, config=config, request_id=request_id,
                fault=fault, timeout_s=timeout_s,
            )
        schedule.append(ChaosJob(category, request, expected[category]))
    return schedule


def schedule_digest(schedule: Sequence[ChaosJob]) -> str:
    """SHA-256 fingerprint of a schedule (determinism check).

    Degraded jobs are keyed on their config fingerprint rather than the
    full cache key only because ``cache_key`` re-digests the same fields;
    malformed requests hash their NaN-bearing payloads too (canonical JSON
    keeps ``NaN`` tokens stable).
    """
    rows = []
    for job in schedule:
        request = job.request
        rows.append({
            "category": job.category,
            "request_id": request.request_id,
            "fault": request.fault,
            "timeout_s": request.timeout_s,
            "seed": request.config.seed,
            "max_samples": request.config.max_samples,
            "deadline_s": request.config.deadline_s,
            "mode": request.config.mode,
            "start": [repr(x) for x in np.asarray(request.task.start).tolist()],
        })
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _check(condition: bool, message: str, violations: List[str]) -> None:
    if not condition:
        violations.append(message)


def run_chaos(
    seed: int = 0,
    jobs: int = 200,
    workers: int = 4,
    robot: str = "mobile2d",
    obstacles: int = 8,
    samples: int = 60,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_s: Optional[float] = None,
    log=print,
) -> ChaosReport:
    """Run one chaos schedule and enforce every invariant.

    Raises :class:`ChaosInvariantError` listing every violated invariant;
    returns a :class:`ChaosReport` when the run is clean.  A watchdog
    thread hard-exits the process (code 3) if the pool deadlocks — a hung
    supervisor must fail the CI job, not hang it.
    """
    from repro.service.runner import PlanningService

    if fault_plan is None:
        # Injector faults that perturb timing but never terminal statuses,
        # so the per-category expectations stay deterministic.
        fault_plan = FaultPlan.from_spec(
            "worker.recv:slow@0.15:delay=0.005;"
            "planner.round:slow@0.001:delay=0.002;"
            "edge.validate:slow@0.0005:delay=0.001;"
            "connect.extend:slow@0.01:delay=0.002;"
            "pool.recv:slow@0.05:delay=0.001",
            seed=max(1, seed),
        )

    watchdog_budget = watchdog_s if watchdog_s is not None else max(120.0, jobs * 2.0)

    def _watchdog_fire() -> None:
        log(f"chaos: WATCHDOG fired after {watchdog_budget:.0f}s — "
            "supervisor deadlock suspected")
        os._exit(3)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as flag_dir:
        schedule = build_schedule(seed, jobs, robot=robot, obstacles=obstacles,
                                  samples=samples, flag_dir=flag_dir)
        digest = schedule_digest(schedule)
        # Determinism invariant: rebuilding from the same seed replays the
        # exact same schedule.
        replay = build_schedule(seed, jobs, robot=robot, obstacles=obstacles,
                                samples=samples, flag_dir=flag_dir)
        if schedule_digest(replay) != digest:
            raise ChaosInvariantError("schedule is not deterministic under its seed")
        log(f"chaos: seed={seed} jobs={jobs} workers={workers} digest={digest[:12]}")

        requests = [job.request for job in schedule]
        pool_config = PoolConfig(
            num_workers=max(1, workers),
            default_timeout_s=30.0,
            max_retries=3,
            backoff_base_s=0.01,
            poll_interval_s=0.005,
            poison_threshold=2,
            breaker_threshold=8,
            breaker_cooldown_s=0.05,
            fault_plan=fault_plan,
        )
        watchdog = threading.Timer(watchdog_budget, _watchdog_fire)
        watchdog.daemon = True
        watchdog.start()
        # The workers install their own scoped injectors from the pool
        # config; the supervisor's ``pool.*`` sites read the process-global
        # one, so install it here (and restore whatever was there before).
        supervisor_injector = FaultInjector(fault_plan, scope="pool")
        previous_injector = set_injector(supervisor_injector)
        started = time.perf_counter()
        try:
            with PlanningService(pool_config=pool_config) as service:
                responses = service.run_batch(requests)
                elapsed = time.perf_counter() - started
                cache_entries = list(service.cache._store.values())
                cache_stats = service.cache.stats()
                pool_stats = service.summary()["workers"]
                records = list(service.telemetry.records)
        finally:
            set_injector(previous_injector)
            watchdog.cancel()

    violations: List[str] = []
    # 1. Every job terminal, 1:1, original order.
    _check(len(responses) == len(requests),
           f"{len(requests)} submitted but {len(responses)} answered", violations)
    for request, response in zip(requests, responses):
        _check(response is not None and response.request_id == request.request_id,
               f"response order broken at {request.request_id}", violations)
        _check(response.status in TERMINAL_STATUSES,
               f"{request.request_id}: non-terminal status {response.status!r}",
               violations)
    # 2. No duplicate responses: one telemetry row per request.
    _check(len(records) == len(requests),
           f"{len(records)} telemetry rows for {len(requests)} requests "
           "(duplicate or lost responses)", violations)
    seen_ids = [r.request_id for r in records]
    _check(len(set(seen_ids)) == len(seen_ids),
           "duplicate request_ids in telemetry", violations)
    # 3. The cache never stores or serves a non-ok result.
    for entry in cache_entries:
        _check(entry.status == "ok",
               f"cache stores a {entry.status!r} response", violations)
    for response in responses:
        _check(not (response.cache_hit and response.status != "ok"),
               f"{response.request_id}: cache served status {response.status!r}",
               violations)
    # 4. Per-category expected outcomes (deterministic under the seed).
    categories: Dict[str, int] = {}
    statuses: Dict[str, int] = {}
    for job, response in zip(schedule, responses):
        categories[job.category] = categories.get(job.category, 0) + 1
        statuses[response.status] = statuses.get(response.status, 0) + 1
        _check(response.status in job.expected,
               f"{response.request_id}: expected {job.expected}, "
               f"got {response.status!r} ({response.error})", violations)
        if job.category == "degraded" and response.status == "degraded":
            _check(response.degraded_reason == "deadline",
                   f"{response.request_id}: degraded for "
                   f"{response.degraded_reason!r}, not the deadline", violations)
            _check(len(response.path) >= 1,
                   f"{response.request_id}: degraded without a best-so-far path",
                   violations)
        if job.category == "connect_faulted" and response.status == "degraded":
            _check(response.degraded_reason == "deadline",
                   f"{response.request_id}: faulted connect degraded for "
                   f"{response.degraded_reason!r}, not the deadline", violations)
    # 5. Connect-mode jobs carry the mode dimension in their telemetry rows
    # (the RCA drill-down attribute the planner mode lands on).
    record_by_id = {r.request_id: r for r in records}
    for job in schedule:
        if job.category in ("connect", "connect_faulted"):
            record = record_by_id.get(job.request.request_id)
            _check(record is not None
                   and record.attributes.get("mode") == "connect",
                   f"{job.request.request_id}: telemetry row missing "
                   "mode=connect attribute", violations)
    if violations:
        preview = "\n  ".join(violations[:20])
        raise ChaosInvariantError(
            f"{len(violations)} invariant violation(s):\n  {preview}"
        )
    # Per-job drill-down rows: each telemetry record joined with its
    # schedule category (by request_id) so RCA can split fault-armed vs
    # clean jobs and attribute tail latency to the fault site.
    category_by_id = {job.request.request_id: job.category for job in schedule}
    job_rows = []
    for record in records:
        row = record.to_dict()
        row["category"] = category_by_id.get(record.request_id, "?")
        job_rows.append(row)
    report = ChaosReport(
        seed=seed, jobs=jobs, digest=digest, elapsed_s=elapsed,
        statuses=statuses, categories=categories,
        pool=pool_stats, cache=cache_stats,
        injector_fires=supervisor_injector.counts(),
        records=job_rows,
    )
    log(f"chaos: OK — {jobs} jobs terminal in {elapsed:.1f}s; "
        f"statuses={statuses} restarts={pool_stats.get('restarts')}")
    return report
