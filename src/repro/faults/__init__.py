"""Deterministic, seed-driven fault injection for the planning stack.

The subsystem has three layers:

* :class:`FaultRule` — one fault: *where* (a named site such as
  ``"worker.plan"`` or ``"planner.collision"``), *what* (a kind such as
  ``"crash"`` or ``"corrupt"``), and *when* (probability ``p``, an
  ``after`` warm-up count, an optional ``max_fires`` cap).
* :class:`FaultPlan` — a frozen, serialisable set of rules plus a seed.
  Plans round-trip through a compact spec string
  (``"site:kind@p:max=N:after=N:delay=S;site2:kind2"``) so they can ride
  a CLI flag or a ``PoolConfig`` across a process boundary.
* :class:`FaultInjector` — the runtime: each rule owns a
  :class:`repro.core.rng.LFSR16` stream seeded from ``(plan.seed,
  rule index, scope)``, so firing decisions are bit-deterministic per
  process *scope* (e.g. per worker id) and independent of call
  interleaving across rules.

Zero-overhead contract
----------------------
When no plan is installed the module-level injector is ``None`` and
instrumented sites guard with a single ``is not None`` check (callers are
expected to fetch the injector once per loop, not per iteration).  Rules
that are inert (``p <= 0``) are dropped at injector construction — frozen
rules can never become active — so a site covered only by quiet rules pays
a bare dict miss per call, never a rule-evaluation loop.  ``repro.bench
--faults-gate`` enforces the <1% end-to-end overhead budget of the
disabled hooks.

Side-effect kinds (``crash``, ``hang``, ``slow``, ``error``) are executed
by :meth:`FaultInjector.fire` itself; transport kinds (``corrupt``,
``duplicate``, ``wrong_id``, ``crash_after_send``, ``drop``) are returned
to the caller, which owns the pipe and must interpret them.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.rng import LFSR16
from ..errors import FaultInjected

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "SIDE_EFFECT_KINDS",
    "TRANSPORT_KINDS",
    "SITES",
    "get_injector",
    "set_injector",
    "install_plan",
    "clear",
]

#: Kinds executed inside :meth:`FaultInjector.fire`.
SIDE_EFFECT_KINDS = ("crash", "hang", "slow", "error")

#: Kinds returned to the caller for interpretation (pipe/transport faults).
TRANSPORT_KINDS = ("corrupt", "duplicate", "wrong_id", "crash_after_send", "drop")

#: Known injection sites (documentation + spec validation).  Sites are
#: plain strings so new ones can be added without touching this module,
#: but specs naming an unknown site fail fast unless ``strict=False``.
SITES = (
    "worker.recv",       # worker: after receiving a job, before planning
    "worker.plan",       # worker: inside execute_request, before the planner runs
    "worker.send",       # worker: transport faults on the result send
    "pool.dispatch",     # supervisor: before writing a job to a worker pipe
    "pool.recv",         # supervisor: after reading a result off a pipe
    "planner.round",     # planner: top of each scalar iteration / wave
    "planner.collision", # planner: inside the collision-checker wrapper
    "edge.validate",     # checker: per whole-edge motion validation
    "connect.extend",    # RRT-Connect: per greedy-connect segment/chunk
    "net.accept",        # front end: per accepted connection (drop/slow/error)
    "net.shard_rpc",     # shard client: before each cache-tier round trip
    "net.respond",       # front end: before writing an HTTP response
    "journal.append",    # job journal: per WAL record (crash/drop/corrupt)
    "shard.replicate",   # sharded cache: per replica (non-primary) write
)

_EXIT_CODE = 87          # matches service.worker.CRASH_EXIT_CODE
_HANG_SECONDS = 3600.0   # matches service.worker._HANG_SECONDS


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault at one site.

    Attributes:
        site: injection site name (see :data:`SITES`).
        kind: one of :data:`SIDE_EFFECT_KINDS` or :data:`TRANSPORT_KINDS`.
        p: firing probability per eligible call, in [0, 1].  ``p <= 0``
            makes the rule inert without any RNG draw.
        after: number of eligible calls to let through before the rule
            can fire (warm-up), so e.g. the first N jobs always succeed.
        max_fires: cap on total fires (``None`` = unlimited).
        delay_s: sleep duration for ``kind="slow"``.
    """

    site: str
    kind: str
    p: float = 1.0
    after: int = 0
    max_fires: Optional[int] = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in SIDE_EFFECT_KINDS and self.kind not in TRANSPORT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be >= 0")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be >= 0")

    def to_spec(self) -> str:
        parts = [f"{self.site}:{self.kind}"]
        if self.p != 1.0:
            parts[0] += f"@{self.p:g}"
        if self.max_fires is not None:
            parts.append(f"max={self.max_fires}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.delay_s != 0.05:
            parts.append(f"delay={self.delay_s:g}")
        return ":".join(parts)

    @classmethod
    def from_spec(cls, spec: str, strict: bool = True) -> "FaultRule":
        """Parse ``"site:kind[@p][:max=N][:after=N][:delay=S]"``."""
        fields = [f.strip() for f in spec.split(":") if f.strip()]
        if len(fields) < 2:
            raise ValueError(f"fault spec needs at least site:kind, got {spec!r}")
        site, head = fields[0], fields[1]
        p = 1.0
        if "@" in head:
            head, p_text = head.split("@", 1)
            p = float(p_text)
        kwargs: Dict[str, object] = {}
        for extra in fields[2:]:
            if "=" not in extra:
                raise ValueError(f"bad fault spec field {extra!r} in {spec!r}")
            key, value = extra.split("=", 1)
            key = key.strip()
            if key == "max":
                kwargs["max_fires"] = int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == "delay":
                kwargs["delay_s"] = float(value)
            else:
                raise ValueError(f"unknown fault spec field {key!r} in {spec!r}")
        if strict and site not in SITES:
            raise ValueError(f"unknown fault site {site!r} (known: {', '.join(SITES)})")
        return cls(site=site, kind=head, p=p, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serialisable schedule of fault rules plus a seed."""

    seed: int = 1
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if self.seed <= 0:
            raise ValueError("fault plan seed must be a positive integer")

    def to_spec(self) -> str:
        return ";".join(rule.to_spec() for rule in self.rules)

    @classmethod
    def from_spec(cls, spec: str, seed: int = 1, strict: bool = True) -> "FaultPlan":
        rules = tuple(
            FaultRule.from_spec(part, strict=strict)
            for part in spec.split(";")
            if part.strip()
        )
        return cls(seed=seed, rules=rules)

    def for_sites(self, prefix: str) -> "FaultPlan":
        """Subset of rules whose site starts with ``prefix``."""
        return FaultPlan(
            seed=self.seed,
            rules=tuple(r for r in self.rules if r.site.startswith(prefix)),
        )


def _rule_seed(plan_seed: int, rule_index: int, scope: str) -> int:
    """Deterministic nonzero 16-bit seed per (plan, rule, scope)."""
    mixed = (
        plan_seed * 2654435761
        + 0x9E37 * (rule_index + 1)
        + zlib.crc32(scope.encode("utf-8"))
    ) & 0xFFFF
    return mixed or 0xACE1


class _RuleState:
    __slots__ = ("rule", "lfsr", "calls", "fires")

    def __init__(self, rule: FaultRule, seed: int) -> None:
        self.rule = rule
        self.lfsr = LFSR16(seed)
        self.calls = 0
        self.fires = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` with deterministic per-rule RNG.

    Args:
        plan: the fault schedule.
        scope: a string naming the process/context (e.g. ``"worker3"``);
            it perturbs each rule's RNG seed so distinct workers make
            distinct — but individually reproducible — firing decisions.
        sleep: injected for tests; defaults to :func:`time.sleep`.
    """

    def __init__(self, plan: FaultPlan, scope: str = "", sleep=time.sleep) -> None:
        self.plan = plan
        self.scope = scope
        self._sleep = sleep
        self._by_site: Dict[str, List[_RuleState]] = {}
        for index, rule in enumerate(plan.rules):
            if rule.p <= 0.0:
                # Inert forever (rules are frozen): keep it out of the site
                # table entirely so hot sites covered only by quiet rules
                # pay a bare dict miss, not a rule-evaluation loop.
                continue
            state = _RuleState(rule, _rule_seed(plan.seed, index, scope))
            self._by_site.setdefault(rule.site, []).append(state)
        self.fired: List[Tuple[str, str]] = []

    def has_site(self, site: str) -> bool:
        return site in self._by_site

    def fire(self, site: str, detail: str = "") -> Optional[str]:
        """Evaluate every rule at ``site``; execute or return the fault.

        Returns the transport kind the caller must apply, or ``None`` when
        nothing fired.  Side-effect kinds never return: ``crash`` exits the
        process, ``hang`` sleeps for an hour (the supervisor's deadline
        kills it first), ``error`` raises :class:`FaultInjected`; ``slow``
        sleeps ``delay_s`` then keeps evaluating remaining rules.
        """
        states = self._by_site.get(site)
        if states is None:
            return None
        for state in states:
            rule = state.rule
            state.calls += 1
            if state.calls <= rule.after:
                continue
            if rule.max_fires is not None and state.fires >= rule.max_fires:
                continue
            if rule.p < 1.0 and state.lfsr.next_unit() >= rule.p:
                continue
            state.fires += 1
            self.fired.append((site, rule.kind))
            if rule.kind == "slow":
                self._sleep(rule.delay_s)
                continue
            if rule.kind == "hang":
                self._sleep(_HANG_SECONDS)
                continue
            if rule.kind == "crash":
                os._exit(_EXIT_CODE)
            if rule.kind == "error":
                raise FaultInjected(
                    f"injected fault at {site}" + (f" ({detail})" if detail else "")
                )
            return rule.kind  # transport kinds: caller interprets
        return None

    def counts(self) -> Dict[str, int]:
        """Fires per ``site:kind`` (for assertions and telemetry)."""
        out: Dict[str, int] = {}
        for site, kind in self.fired:
            key = f"{site}:{kind}"
            out[key] = out.get(key, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Process-global injector (mirrors the repro.obs configure/install pattern).
# ``None`` is the steady state: hot paths pay one attribute read + is-None
# check, nothing else.

_INJECTOR: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    return _INJECTOR


def set_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install ``injector`` globally; returns the previous one."""
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    return previous


def install_plan(plan: Optional[FaultPlan], scope: str = "") -> Optional[FaultInjector]:
    """Build and install an injector for ``plan`` (``None`` clears)."""
    injector = FaultInjector(plan, scope=scope) if plan is not None else None
    set_injector(injector)
    return injector


def clear() -> None:
    set_injector(None)
