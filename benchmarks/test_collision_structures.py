"""Section VI extension: collision-structure memory/accuracy comparison.

The Related Work weighs space-subdivision structures for collision
checking: dense occupancy grids (CODAcc) need megabytes at useful
resolutions, octrees trade memory against conservatism through depth, and
MOPED's R-tree stores only the obstacle boxes plus a thin hierarchy while
keeping *exact* OBB decisions via the second stage.  This bench puts all
three (plus the exact checker's false-positive-free behaviour) on one
table for the paper's 3D workspace.
"""

import numpy as np

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.collision import BruteOBBChecker, OccupancyGridChecker, TwoStageChecker
from repro.core.robots import get_robot
from repro.spatial.octree import make_octree_checker
from repro.workloads import random_environment


def test_collision_structure_tradeoffs(benchmark, record_figure):
    def experiment():
        env = random_environment(3, 32, seed=5)
        robot = get_robot("drone3d")
        exact = BruteOBBChecker(robot, env, motion_resolution=5.0)
        two_stage = TwoStageChecker(robot, env, motion_resolution=5.0)
        grid = OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=1.0)
        octree_shallow = make_octree_checker(robot, env, motion_resolution=5.0, max_depth=5)
        octree_deep = make_octree_checker(robot, env, motion_resolution=5.0, max_depth=7)

        # R-tree memory: obstacle AABBs (6 words) + OBBs (15 words) + node MBRs.
        rtree_bytes = env.num_obstacles * (6 + 15) * 2 + env.rtree.height * 8 * 12

        rng = np.random.default_rng(0)
        configs = [rng.uniform(robot.config_lo, robot.config_hi) for _ in range(300)]
        truth = [exact.config_in_collision(c) for c in configs]

        def false_positive_rate(checker):
            fp = sum(
                1
                for c, t in zip(configs, truth)
                if not t and checker.config_in_collision(c)
            )
            free = sum(1 for t in truth if not t)
            return 100.0 * fp / free if free else 0.0

        rows = [
            ["R-tree + OBB (MOPED)", rtree_bytes, false_positive_rate(two_stage)],
            ["Octree depth 5", octree_shallow.octree.memory_bytes(),
             false_positive_rate(octree_shallow)],
            ["Octree depth 7", octree_deep.octree.memory_bytes(),
             false_positive_rate(octree_deep)],
            ["Occupancy grid 1u (CODAcc)", grid.grid_bytes, false_positive_rate(grid)],
        ]
        return rows

    rows = run_once(benchmark, experiment)
    print("\n" + format_table(
        ["structure", "memory_bytes", "false_positive_%"], rows,
        title="Section VI: collision-structure memory vs accuracy (3D, 32 obstacles)",
    ))
    memory = {row[0]: row[1] for row in rows}
    fp = {row[0]: row[2] for row in rows}
    # Shape checks from the paper's argument:
    # MOPED's R-tree is tiny AND exact.
    assert fp["R-tree + OBB (MOPED)"] == 0.0
    assert memory["R-tree + OBB (MOPED)"] < memory["Octree depth 7"]
    # The dense grid needs megabytes (paper footnote: > 3.2 MB).
    assert memory["Occupancy grid 1u (CODAcc)"] > 3.2 * 1024 * 1024
    # Deeper octrees cost more memory but fewer false positives.
    assert memory["Octree depth 7"] > memory["Octree depth 5"]
    assert fp["Octree depth 7"] <= fp["Octree depth 5"]
