"""Section VI extension: environment-update cost in dynamic scenes.

Not a paper figure — it quantifies the Related Work argument: the MICRO'16
precomputed-collision accelerator "needs hours of offline reset if
obstacles change", CODAcc must re-rasterise its >3.2 MB occupancy grid, and
MOPED only re-runs an STR bulk load.  The bench replans through a moving
obstacle field and reports per-epoch preparation cost for each approach.
"""

import numpy as np

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.config import moped_config
from repro.core.replan import ReplanningSession, environment_prep_macs
from repro.core.robots import get_robot
from repro.workloads import random_dynamic_scenario


def test_dynamic_replanning(benchmark, record_figure):
    def experiment():
        scenario = random_dynamic_scenario(2, num_obstacles=12, seed=3, max_speed=8.0)
        robot = get_robot("mobile2d")
        env0 = scenario.environment_at(0.0)
        prep = {m: environment_prep_macs(env0, m) for m in ("rtree", "grid", "precomputed")}
        session = ReplanningSession(
            robot,
            scenario,
            config=moped_config("v4", max_samples=250, goal_bias=0.2, seed=0),
            execute_distance=60.0,
        )
        outcome = session.run(
            np.array([30.0, 30.0, 0.0]), np.array([270.0, 270.0, 0.0]), max_epochs=12
        )
        return prep, outcome

    prep, outcome = run_once(benchmark, experiment)
    rows = [
        ["MOPED (STR R-tree)", prep["rtree"], prep["rtree"] / prep["rtree"]],
        ["CODAcc (grid re-raster)", prep["grid"], prep["grid"] / prep["rtree"]],
        ["MICRO'16 (precomputed)", prep["precomputed"], prep["precomputed"] / prep["rtree"]],
    ]
    print("\n" + format_table(
        ["approach", "prep_macs_per_change", "vs_moped_x"], rows,
        title="Section VI: environment-update cost when obstacles move",
    ))
    print(f"replanning outcome: reached={outcome.reached_goal} "
          f"epochs={len(outcome.epochs)} "
          f"prep_overhead={100 * outcome.total_prep_macs / outcome.total_plan_macs:.3f}%")
    # Shape checks: the Section VI ordering and a negligible prep overhead.
    assert prep["rtree"] < prep["grid"] < prep["precomputed"]
    assert outcome.reached_goal
    assert outcome.total_prep_macs < 0.01 * outcome.total_plan_macs
