"""Fig 15: hardware performance vs CPU, RRT\\* ASIC, and ASIC+CODAcc.

Paper claims (5000 samples, synthesized 28nm design): MOPED latency
0.35-0.96 ms; vs CPU 1066-6149x speedup / 453.6-10744.6x energy efficiency;
vs ASIC 2.3-41.1x / 2.1-38.2x / 2.1-38.3x (speed / energy / area); vs
ASIC+CODAcc 2-9.2x / 2-9.3x / 1.7-7.9x.  At reduced sample budgets the
ratios shrink (NS cost grows superlinearly with samples) but the ordering
and rough factors must hold.
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig15_hardware


def test_fig15_hardware(benchmark, record_figure):
    scale = default_scale(tasks=1, obstacle_counts=(8, 32))
    result = run_once(benchmark, run_fig15_hardware, scale)
    record_figure(result)
    for row in result.rows:
        (robot, count, moped_ms, cpu_speed, cpu_eeff,
         asic_speed, asic_eeff, asic_aeff,
         codacc_speed, codacc_eeff, codacc_aeff) = row
        # Ordering: MOPED beats every baseline on speed and energy.
        assert cpu_speed > 50.0, f"{robot}/{count}: CPU speedup too small"
        assert asic_speed > 1.5, f"{robot}/{count}: ASIC speedup too small"
        assert codacc_speed > 1.0, f"{robot}/{count}: CODAcc speedup too small"
        assert cpu_eeff > 50.0
        assert asic_eeff > 1.5
        # CODAcc accelerates collision checks, so plain ASIC never beats it
        # by area-efficiency against MOPED.
        assert codacc_speed <= asic_speed * 1.5
