"""Wall-clock micro-benchmarks of the library's kernel operations.

Unlike the figure benches (which measure hardware-model MAC counts), these
time the *Python implementation* itself — the regression guard an
open-source release needs so kernel changes don't silently slow the
planner.  pytest-benchmark runs each kernel many times and reports
statistics.
"""

import numpy as np
import pytest

from repro.core.collision import TwoStageChecker
from repro.core.robots import get_robot
from repro.geometry import AABB, OBB, mindist_sq_point_to_rect, obb_intersects_obb
from repro.geometry.rotations import random_rotation_3d
from repro.geometry.sat import aabb_intersects_obb
from repro.spatial import RTree, SIMBRTree
from repro.workloads import random_environment

RNG = np.random.default_rng(42)


@pytest.fixture(scope="module")
def obb_pair():
    a = OBB(RNG.uniform(0, 10, 3), RNG.uniform(0.5, 3, 3), random_rotation_3d(RNG))
    b = OBB(RNG.uniform(0, 10, 3), RNG.uniform(0.5, 3, 3), random_rotation_3d(RNG))
    return a, b


def test_kernel_sat_obb_obb_3d(benchmark, obb_pair):
    a, b = obb_pair
    benchmark(obb_intersects_obb, a, b)


def test_kernel_sat_aabb_obb_3d(benchmark, obb_pair):
    a, b = obb_pair
    box = a.to_aabb()
    benchmark(aabb_intersects_obb, box, b)


def test_kernel_mindist(benchmark):
    box = AABB(np.zeros(7), np.ones(7) * 5.0)
    point = RNG.uniform(-3, 8, 7)
    benchmark(mindist_sq_point_to_rect, point, box)


def test_kernel_rtree_query(benchmark):
    env = random_environment(3, 48, seed=0)
    tree = env.rtree
    robot_obb = OBB(np.full(3, 150.0), np.full(3, 8.0), random_rotation_3d(RNG))
    benchmark(tree.query_obb, robot_obb, prefilter_aabb=robot_obb.to_aabb())


def test_kernel_simbr_nearest(benchmark):
    tree = SIMBRTree(dim=6, capacity=8)
    rng = np.random.default_rng(1)
    points = [rng.uniform(0, 10, 6)]
    tree.insert(0, points[0])
    for i in range(1, 2000):
        parent = int(rng.integers(0, i))
        p = points[parent] + rng.normal(scale=0.4, size=6)
        tree.insert(i, p, sibling_of=parent)
        points.append(p)
    query = rng.uniform(0, 10, 6)
    benchmark(tree.nearest, query)


def test_kernel_simbr_steering_insert(benchmark):
    rng = np.random.default_rng(2)
    tree = SIMBRTree(dim=6, capacity=8)
    tree.insert(0, rng.uniform(0, 10, 6))
    counter = {"i": 0}

    def insert_one():
        counter["i"] += 1
        key = counter["i"]
        tree.insert(key, rng.uniform(0, 10, 6), sibling_of=0)

    benchmark(insert_one)


def test_kernel_two_stage_config_check(benchmark):
    env = random_environment(3, 32, seed=1)
    robot = get_robot("drone3d")
    checker = TwoStageChecker(robot, env, motion_resolution=5.0)
    config = np.array([150.0, 150.0, 150.0, 0.3, 0.1, -0.2])
    benchmark(checker.config_in_collision, config)


def test_kernel_arm_forward_kinematics(benchmark):
    robot = get_robot("xarm7")
    config = RNG.uniform(robot.config_lo, robot.config_hi)
    benchmark(robot.body_obbs, config)
