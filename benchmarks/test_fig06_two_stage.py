"""Fig 6: collision-check cost reduction from two-stage processing.

Paper claim: more than 20x saving in collision-check computation.  The
saving grows with obstacle count and workspace dimension (3D SAT checks are
the expensive ones the R-tree filter avoids).
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig06_two_stage


def test_fig06_two_stage(benchmark, record_figure):
    scale = default_scale(tasks=1, obstacle_counts=(8, 48))
    result = run_once(benchmark, run_fig06_two_stage, scale)
    record_figure(result)
    savings = {(row[0], row[1]): row[4] for row in result.rows}
    # Shape check 1: every workload saves collision-check work.
    assert all(s > 1.5 for s in savings.values())
    # Shape check 2: denser environments save more (per robot).
    robots = {row[0] for row in result.rows}
    for robot in robots:
        assert savings[(robot, 48)] > savings[(robot, 8)] * 0.8
