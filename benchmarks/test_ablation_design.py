"""Design-space ablations for the choices DESIGN.md calls out.

Not paper figures — these probe the co-design's sensitivity to its sizing
decisions:

* the 168-MAC split across NS / CC / refine / tree-op units (the balance
  that bounds the S&R overlap);
* the Top NS Cache capacity (unit-level caching, Section IV-C);
* the SI-MBR-Tree fanout (approximated-neighborhood size vs cost);
* the SIAS scope (leaf = paper-literal vs parent = wider, quality-biased).
"""

import numpy as np
import pytest

from conftest import default_scale, run_once

from repro.analysis.tables import format_table
from repro.core.config import moped_config
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.hardware import MopedAccelerator, MopedHardwareParams
from repro.hardware.pipeline import snr_latency_cycles
from repro.workloads import random_task

SAMPLES = 400


@pytest.fixture(scope="module")
def arm_plan():
    """One MOPED planning run whose round log the timing ablations replay."""
    task = random_task("viperx300", 16, seed=1)
    robot = get_robot("viperx300")
    config = moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
    return RRTStarPlanner(robot, task, config).plan()


def test_mac_allocation_sweep(benchmark, arm_plan):
    """S&R speedup and latency across NS/CC datapath splits."""

    def sweep():
        rows = []
        for ns, cc, refine, tree_op in [
            (8, 136, 16, 8),
            (16, 128, 16, 8),
            (32, 112, 16, 8),
            (64, 80, 16, 8),
            (84, 60, 16, 8),
        ]:
            params = MopedHardwareParams(
                ns_unit_macs=ns, cc_unit_macs=cc,
                refine_unit_macs=refine, tree_op_macs=tree_op,
            )
            report = snr_latency_cycles(arm_plan.rounds, params)
            rows.append([f"{ns}/{cc}", report.snr_cycles, report.speedup])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["ns/cc_macs", "snr_cycles", "snr_speedup_x"], rows,
        title="Ablation: datapath MAC allocation (ViperX 300)",
    ))
    # The chosen default (16/128) must be at least near the sweep's best.
    cycles = {row[0]: row[1] for row in rows}
    assert cycles["16/128"] <= 1.25 * min(cycles.values())


def test_top_cache_size_sweep(benchmark, record_figure):
    """Unit-level cache capacity vs hit rate (Section IV-C)."""
    task = random_task("mobile2d", 16, seed=1)
    robot = get_robot("mobile2d")
    config = moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")

    def sweep():
        rows = []
        for capacity in (4, 16, 64, 256):
            hw = MopedAccelerator(top_cache_nodes=capacity).run(robot, task, config)
            rows.append([capacity, hw.cache.top_cache_hit_rate, hw.perf.energy_j * 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["cache_nodes", "hit_rate", "energy_uJ"], rows,
        title="Ablation: Top NS Cache capacity (2D Mobile)",
    ))
    hit = {row[0]: row[1] for row in rows}
    assert hit[256] >= hit[4]  # bigger cache never hurts
    assert hit[64] > 0.5       # modest capacity already captures the top


def test_simbr_capacity_sweep(benchmark):
    """SI-MBR fanout: neighborhood richness vs total cost."""
    task = random_task("mobile2d", 16, seed=2)
    robot = get_robot("mobile2d")

    def sweep():
        rows = []
        for capacity in (4, 8, 16):
            config = moped_config(
                "v4", max_samples=SAMPLES, seed=0, goal_bias=0.1,
                simbr_capacity=capacity,
            )
            result = RRTStarPlanner(robot, task, config).plan()
            rows.append([
                capacity,
                result.total_macs,
                result.path_cost if result.success else float("nan"),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["capacity", "total_macs", "path_cost"], rows,
        title="Ablation: SI-MBR-Tree fanout (2D Mobile)",
    ))
    assert all(row[1] > 0 for row in rows)


def test_sias_scope_ablation(benchmark):
    """SIAS scope: leaf (paper-literal) vs parent (quality-biased)."""
    task = random_task("mobile2d", 16, seed=3)
    robot = get_robot("mobile2d")

    def sweep():
        rows = []
        for scope in ("leaf", "parent"):
            config = moped_config(
                "v4", max_samples=SAMPLES, seed=0, goal_bias=0.1, approx_scope=scope,
            )
            result = RRTStarPlanner(robot, task, config).plan()
            rows.append([
                scope,
                result.neighborhood_macs,
                result.path_cost if result.success else float("nan"),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["scope", "neighborhood_macs", "path_cost"], rows,
        title="Ablation: SIAS neighborhood scope (2D Mobile)",
    ))
    macs = {row[0]: row[1] for row in rows}
    assert macs["leaf"] <= macs["parent"]  # leaf scope is the cheaper one


def test_motion_resolution_sweep(benchmark):
    """Movement-check discretisation: safety margin vs collision-check cost.

    Finer resolutions multiply first-stage checks per movement; coarser
    resolutions risk tunnelling through thin obstacles.  The sweep measures
    both sides: CC MACs, and edges a fine-resolution oracle rejects.
    """
    from repro.core.collision import BruteOBBChecker

    task = random_task("mobile2d", 32, seed=4)
    robot = get_robot("mobile2d")
    oracle = BruteOBBChecker(robot, task.environment, motion_resolution=0.5)

    def sweep():
        rows = []
        for divisor in (2, 4, 8):
            config = moped_config(
                "v4", max_samples=SAMPLES, seed=0, goal_bias=0.1,
                motion_resolution=robot.step_size / divisor,
            )
            result = RRTStarPlanner(robot, task, config).plan()
            unsafe = 0
            if result.success:
                unsafe = sum(
                    1
                    for a, b in zip(result.path[:-1], result.path[1:])
                    if oracle.motion_in_collision(a, b)
                )
            rows.append([
                f"step/{divisor}",
                result.counter.category_macs("collision_check"),
                unsafe,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["resolution", "cc_macs", "unsafe_path_edges"], rows,
        title="Ablation: motion-check resolution (2D Mobile, 32 obstacles)",
    ))
    macs = [row[1] for row in rows]
    assert macs[0] < macs[-1]  # finer checking costs more
    # The default (step/4) must produce a safe path at oracle resolution.
    assert rows[1][2] == 0
