"""Fig 18 (right): MOPED with an AABB-only checker vs RRT\\* ASIC (AABB).

Paper claim: even when both sides use the cheap AABB bounding method,
MOPED's remaining optimisations (R-tree filtering, SI-MBR search, SIAS,
LCI, S&R) still deliver 5.6-7.6x speedup.
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig18_aabb_speedup


def test_fig18_aabb_speedup(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig18_aabb_speedup, scale)
    record_figure(result)
    # Shape check: the AABB-only MOPED still clearly beats the AABB ASIC.
    assert all(row[1] > 1.5 for row in result.rows)
