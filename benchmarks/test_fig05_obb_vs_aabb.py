"""Figs 5 / 18 (left): OBB vs AABB obstacle representation.

Paper claim: the exact OBB second stage finds paths 20-50% cheaper than
AABB-represented obstacles and succeeds on tasks AABB falsely blocks.
"""

import math

from conftest import default_scale, run_once

from repro.analysis import run_fig18_bounding_box


def test_fig05_obb_vs_aabb(benchmark, record_figure):
    scale = default_scale(robots=("mobile2d", "viperx300", "drone3d"), tasks=2)
    result = run_once(benchmark, run_fig18_bounding_box, scale)
    record_figure(result)
    # Shape checks: OBB never loses tasks AABB solves, paired path costs
    # stay comparable-or-better under sampling noise, and the deterministic
    # narrow-passage scenario shows the full Fig 5 effect.
    narrow = None
    for row in result.rows:
        robot, obb_cost, aabb_cost, obb_succ, aabb_succ = row
        if robot == "Narrow passage":
            narrow = row
            continue
        assert obb_succ >= aabb_succ
        if not math.isnan(obb_cost) and not math.isnan(aabb_cost):
            assert obb_cost <= 1.2 * aabb_cost
    assert narrow is not None
    assert narrow[3] == 100.0  # OBB always crosses the channel
    if narrow[4] == 100.0 and not math.isnan(narrow[2]):
        # When AABB succeeds at all, it detours: clearly costlier.
        assert narrow[2] > 1.2 * narrow[1]
