"""Shared infrastructure for the per-figure benchmark targets.

Every benchmark runs its figure's experiment exactly once (rounds=1 — the
experiments are deterministic and expensive), prints the paper-style table,
and archives it under ``results/``.  Scale defaults keep the full suite at
laptop-friendly runtimes; set ``REPRO_SAMPLES`` / ``REPRO_TASKS`` to push
toward the paper's 5000-sample / 50-task protocol.
"""

import os
import pathlib

import pytest

from repro.analysis import ExperimentScale, format_table

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def default_scale(**overrides) -> ExperimentScale:
    """Benchmark scale: env-var driven with per-figure overrides."""
    base = ExperimentScale.from_env()
    merged = {
        "samples": base.samples,
        "tasks": base.tasks,
        "obstacle_counts": base.obstacle_counts,
        "robots": base.robots,
        "seed": base.seed,
    }
    merged.update(overrides)
    return ExperimentScale(**merged)


@pytest.fixture(scope="session")
def record_figure():
    """Print a figure's table and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result):
        table = format_table(result.headers, result.rows, title=result.title)
        body = (
            f"{table}\n\npaper claim: {result.paper_claim}\n"
            + (f"notes: {result.notes}\n" if result.notes else "")
        )
        print("\n" + body)
        (RESULTS_DIR / f"{result.figure}.txt").write_text(body)
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
