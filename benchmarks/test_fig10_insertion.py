"""Fig 10: the low-cost O(1) SI-MBR-Tree insertion (LCI).

Paper claim: the steering-informed direct insertion brings >20% additional
computational saving over the conventional minimum-area-enlargement
insertion (the V3 -> V4 rung of Fig 16).
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig10_insertion


def test_fig10_insertion(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig10_insertion, scale)
    record_figure(result)
    # Shape check: LCI saves on average.  The per-robot saving is small at
    # reduced budgets (insertion and NS are a few % of total work until the
    # tree grows; see EXPERIMENTS.md) and collision-check noise can push an
    # individual robot slightly negative.
    import numpy as np

    savings = [row[3] for row in result.rows]
    assert np.mean(savings) > 0.0
    assert all(s > -6.0 for s in savings)
