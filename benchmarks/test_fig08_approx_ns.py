"""Fig 8: steering-informed approximated neighbor search (SIAS).

Paper claim: at least 4x reduction in neighbor-search cost without
significant path-cost increase (occasionally even lower cost, thanks to the
error tolerance granted by the Tree Refinement stage).
"""

import math

from conftest import default_scale, run_once

from repro.analysis import run_fig08_approx_ns


def test_fig08_approx_ns(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig08_approx_ns, scale)
    record_figure(result)
    for row in result.rows:
        robot, exact_cost, approx_cost, saving = row
        # Shape check 1: the paper's >=4x saving on the second search.
        assert saving > 3.0, f"{robot}: saving {saving}"
        # Shape check 2: path quality is preserved where both succeed.
        if not math.isnan(exact_cost) and not math.isnan(approx_cost):
            assert approx_cost <= 1.3 * exact_cost
