"""Fig 14: algorithmic performance across all robots and environments.

Paper claim: MOPED significantly reduces computational cost without
compromising path quality; the reduction is more pronounced for
higher-dimensional robots and denser environments.
"""

import math

import numpy as np

from conftest import default_scale, run_once

from repro.analysis import run_fig14_algorithmic


def test_fig14_algorithmic(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig14_algorithmic, scale)
    record_figure(result)
    rows = result.rows
    # Shape check 1: MOPED always reduces computation.
    assert all(row[2] > 1.0 for row in rows)
    # Shape check 2: 3D robots save more than the 2D mobile robot on average.
    mobile = [row[2] for row in rows if row[0] == "2D Mobile"]
    arms = [row[2] for row in rows if row[0] in ("ROZUM", "xArm-7")]
    if mobile and arms:
        assert np.mean(arms) > np.mean(mobile)
    # Shape check 3: path quality is comparable (ratio around 1 where known).
    ratios = [row[3] for row in rows if not math.isnan(row[3])]
    if ratios:
        assert np.mean(ratios) < 1.3
