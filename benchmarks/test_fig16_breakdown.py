"""Fig 16: source of computational saving (top) and software speedup (bottom).

Paper claims: V1 (TSPS) saves 33.9-77.7%; V2 (STNS) a further 48.2-80.1%;
V3 (SIAS) a further 28.3-47%; V4 (LCI) a further 14.6-66%.  The software-
only MOPED algorithm is 2.77-4.14x faster than the C++ RRT\\* baseline.
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig16_breakdown


def test_fig16_breakdown(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig16_breakdown, scale)
    record_figure(result)
    import numpy as np

    v4_rungs = []
    for row in result.rows:
        robot, v1, v2, v3, v4, software = row
        # The first three rungs contribute clear savings; the LCI rung is
        # small at reduced budgets (it scales with the NS share of total
        # work) and noisy, so it is checked in aggregate below.
        assert v1 > 0 and v2 > 0 and v3 > 0, f"{robot}: {row}"
        v4_rungs.append(v4)
        # The end-to-end software speedup is well above 1x.
        assert software > 2.0, f"{robot}: software speedup {software}"
    assert np.mean(v4_rungs) > -1.0
