"""Fig 19: speedup vs sampling stage (left) and SI-MBR vs KD-tree (right).

Paper claims: MOPED's speedup steadily increases with the number of sampled
points (left); SI-MBR-Tree neighbor search costs 4.12-7.76x less than a
KD-tree-based one in RRT\\* (right), because KD-trees degrade on dynamic
high-dimensional data and cannot skip the second search per round.
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig19_kd_comparison, run_fig19_scaling


def test_fig19_left_speedup_scaling(benchmark, record_figure):
    scale = default_scale(tasks=1, samples=max(default_scale().samples, 800))
    result = run_once(benchmark, run_fig19_scaling, scale)
    record_figure(result)
    # Shape check: the increasing trend comes from the baseline's O(n)
    # brute neighbor search outgrowing MOPED's O(log n) search.  At reduced
    # budgets NS is a visible share of baseline work only for the low-DoF
    # workloads; the CC-dominated arms reach that regime at far larger
    # sample counts (the paper evaluates at 5000-500000), so they are only
    # held to a no-collapse floor here.
    strict = {"2D Mobile", "3D Drone"}
    robots = {row[0] for row in result.rows}
    for robot in robots:
        series = [row for row in result.rows if row[0] == robot]
        series.sort(key=lambda row: row[1])
        first, last = series[0][2], series[-1][2]
        if robot in strict:
            assert last > first, f"{robot}: {series}"
        else:
            assert last > 0.6 * first, f"{robot}: {series}"


def test_fig19_right_kd_comparison(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig19_kd_comparison, scale)
    record_figure(result)
    # Shape check: SI-MBR search is cheaper than KD search on every robot.
    assert all(row[3] > 1.0 for row in result.rows)
