"""Fig 17: speedup brought by speculate-and-repair.

Paper claim: consistent speedup across robot models (2-7 DoF) and
environment complexities (8-48 obstacles); about 2x for the 2D mobile
workload at 5000 samplings.  The magnitude depends on how balanced the
NS and CC unit loads are (the paper makes the same observation).
"""

from conftest import default_scale, run_once

from repro.analysis import run_fig17_snr, run_snr_buffer_stats


def test_fig17_snr(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig17_snr, scale)
    record_figure(result)
    # Shape check: S&R consistently helps on every workload.
    assert all(row[2] > 1.0 for row in result.rows)


def test_snr_buffers(benchmark, record_figure):
    """Section IV-B buffer sizing: FIFO <= 20, missing neighbors <= 5."""
    scale = default_scale(tasks=1, obstacle_counts=(8, 48))
    result = run_once(benchmark, run_snr_buffer_stats, scale)
    record_figure(result)
    for row in result.rows:
        robot, count, max_fifo, max_missing, stall = row
        assert max_fifo <= 20
        assert max_missing <= 5
