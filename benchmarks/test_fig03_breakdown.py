"""Fig 3: computational cost breakdown of the original RRT\\*.

Paper claim: collision check contributes the largest portion of RRT\\*'s
computational cost in most scenarios, motivating the two-stage scheme.
"""

import pytest

from conftest import default_scale, run_once

from repro.analysis import run_fig03_breakdown, run_moped_breakdown


def test_fig03_breakdown(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_fig03_breakdown, scale)
    record_figure(result)
    # Shape check: collision check dominates for the majority of workloads.
    dominated = sum(1 for row in result.rows if row[2] > row[3])
    assert dominated >= len(result.rows) / 2


def test_moped_residual_breakdown(benchmark, record_figure):
    """Extension: the cost profile after all four optimisations."""
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_moped_breakdown, scale)
    record_figure(result)
    for row in result.rows:
        assert sum(row[2:6]) == pytest.approx(100.0, rel=1e-6)

