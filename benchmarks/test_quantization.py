"""Section IV-A extension: validating the 16-bit word width.

The hardware stores every spatial value as a 16-bit word.  This bench
sweeps the word width over the mobile and drone workloads and reports
success rate and path cost per width — the quantitative backing for the
paper's choice: 16 bits is quality-neutral (grid step ~0.005 units over a
300-unit workspace), while 8 bits visibly degrades geometry.
"""

import math

import numpy as np

from conftest import default_scale, run_once

from repro.analysis.tables import format_table
from repro.core.config import moped_config
from repro.core.quantization import quantization_step, quantize_task
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.workloads import random_task


def test_word_width_sweep(benchmark, record_figure):
    scale = default_scale(tasks=1)

    def experiment():
        rows = []
        for robot_name in ("mobile2d", "drone3d"):
            robot = get_robot(robot_name)
            task = random_task(robot_name, 16, seed=scale.seed)
            outcomes = {}
            for bits in (8, 12, 16, None):  # None = float64 reference
                run_task = task if bits is None else quantize_task(task, robot, bits)
                costs, successes = [], 0
                for seed in range(3):
                    config = moped_config(
                        "v4", max_samples=scale.samples, seed=seed, goal_bias=0.15
                    )
                    result = RRTStarPlanner(robot, run_task, config).plan()
                    if result.success:
                        successes += 1
                        costs.append(result.path_cost)
                outcomes[bits] = (successes, float(np.mean(costs)) if costs else float("nan"))
            for bits in (8, 12, 16, None):
                successes, cost = outcomes[bits]
                rows.append([
                    robot.label,
                    "float64" if bits is None else f"{bits}-bit",
                    successes,
                    cost,
                ])
        return rows

    rows = run_once(benchmark, experiment)
    print("\n" + format_table(
        ["robot", "width", "successes/3", "mean_path_cost"], rows,
        title="Section IV-A: planning quality vs word width",
    ))
    print(f"(16-bit grid step over the 300-unit workspace: "
          f"{quantization_step(0.0, 300.0, 16):.4f} units)")
    # Shape check: 16-bit matches the float reference on success and cost.
    by_key = {(row[0], row[1]): row for row in rows}
    for robot in ("2D Mobile", "3D Drone"):
        ref = by_key[(robot, "float64")]
        q16 = by_key[(robot, "16-bit")]
        assert q16[2] >= ref[2] - 1  # success parity (1-run tolerance)
        if not math.isnan(ref[3]) and not math.isnan(q16[3]):
            assert abs(q16[3] - ref[3]) <= 0.1 * ref[3]
