"""Section IV-C: hierarchical multi-level caching statistics.

Paper claim: caching the top of the SI-MBR-Tree (unit level), the search
trace (module level), and the identified neighborhood (engine level)
reduces data movement and resolves memory-port conflicts.
"""

from conftest import default_scale, run_once

from repro.analysis import run_cache_stats


def test_multilevel_caching(benchmark, record_figure):
    scale = default_scale(tasks=1)
    result = run_once(benchmark, run_cache_stats, scale)
    record_figure(result)
    for row in result.rows:
        robot, top_hit_rate, trace_hits, neighbor_reads, saving_pct = row
        # The unit-level cache captures the root-side temporal locality.
        assert top_hit_rate > 0.3, f"{robot}: hit rate {top_hit_rate}"
        # The engine-level cache is exercised on every accepted sample.
        assert neighbor_reads > 0
        # Net memory energy goes down with caches enabled.
        assert saving_pct > 0.0


def test_bank_conflict_relief(benchmark, record_figure):
    """Section IV-C's resource-conflict claim, quantified.

    Bank pressure on the shared Bottom NS SRAM with and without the cache
    hierarchy: the unit-level cache absorbs the hot top-of-tree reads, the
    trace cache absorbs insertion re-reads, the engine-level cache absorbs
    refinement's neighborhood reads.
    """
    from repro.analysis.tables import format_table
    from repro.core.config import moped_config
    from repro.core.robots import get_robot
    from repro.core.rrtstar import RRTStarPlanner
    from repro.hardware.conflict import analyze_bank_conflicts
    from repro.workloads import random_task

    scale = default_scale(tasks=1)

    def experiment():
        rows = []
        for robot_name in scale.robots:
            task = random_task(robot_name, 16, seed=scale.seed)
            robot = get_robot(robot_name)
            plan = RRTStarPlanner(
                robot, task,
                moped_config("v4", max_samples=scale.samples, seed=scale.seed),
            ).plan()
            cached = analyze_bank_conflicts(
                plan.rounds, robot.dof, robot.workspace_dim, caches_enabled=True
            )
            raw = analyze_bank_conflicts(
                plan.rounds, robot.dof, robot.workspace_dim, caches_enabled=False
            )
            rows.append([
                robot.label,
                raw.bank_cycles.get("bottom_ns", 0.0),
                cached.bank_cycles.get("bottom_ns", 0.0),
                raw.bank_cycles.get("bottom_ns", 1.0)
                / max(cached.bank_cycles.get("bottom_ns", 1.0), 1e-9),
            ])
        return rows

    rows = run_once(benchmark, experiment)
    print("\n" + format_table(
        ["robot", "ns_sram_cycles_raw", "ns_sram_cycles_cached", "relief_x"], rows,
        title="Section IV-C: Bottom NS SRAM pressure with/without caches",
    ))
    # Shape check: the hierarchy meaningfully relieves the shared bank.
    assert all(row[3] > 2.0 for row in rows)
